"""Parallel design-sweep engine over the security/availability pipeline.

This module is the scaling entry point for whole-design-space studies
(the paper's Figs. 6-7 generalised from five designs to thousands).  It
wraps :func:`repro.evaluation.combined.evaluate_design` behind a
:class:`SweepEngine` with pluggable executors and deterministic output.

The engine is design-kind agnostic: anything implementing the
:class:`~repro.enterprise.design.DesignSpec` protocol — homogeneous
:class:`~repro.enterprise.design.RedundancyDesign`, diverse-stack
:class:`~repro.enterprise.heterogeneous.HeterogeneousDesign`, or a mix —
is cached, chunked and dispatched identically.

Caching / batching contract
---------------------------
* **Engine-level result cache.**  ``SweepEngine.evaluate`` memoises one
  :class:`DesignEvaluation` per design spec (specs are hashable value
  objects).  Re-sweeping an overlapping space only pays for the designs
  not seen before; ``clear_cache()`` resets it.
* **Chunked dispatch.**  Uncached designs are split into contiguous
  chunks and each chunk is evaluated by one executor call.
* **Structure sharing (default).**  With ``structure_sharing=True`` the
  serial and thread executors run every chunk over one long-lived
  ``SecurityEvaluator``/``AvailabilityEvaluator`` pair (one lower-layer
  SRN solve per role, one canonical exploration per transition
  pattern), and the process executor precomputes both in the parent and
  publishes the numeric arrays to pool workers through
  ``multiprocessing.shared_memory`` with a pool initializer — the case
  study is pickled once per worker and chunks carry only designs.
  ``structure_sharing=False`` restores the per-chunk re-solving
  baseline; results are byte-identical either way.
* **Deterministic ordering.**  Results are always returned in input
  order, regardless of executor: chunks are indexed at submission and
  reassembled positionally.  Every executor and sharing mode produces
  byte-identical results.
* **Failure reporting.**  A design that fails inside any executor
  raises :class:`~repro.errors.EvaluationError` carrying the design
  label and the original traceback (always picklable); a worker that
  dies outright surfaces the failing batch's design labels instead of
  a bare ``BrokenProcessPool``.

Executors
---------
``"serial"``
    In-process loop; zero overhead, the default.
``"thread"``
    ``concurrent.futures.ThreadPoolExecutor``; the cheap parallelism —
    no fork, no pickling — that pays off because the solve phase spends
    its time in scipy's ``spsolve``, which releases the GIL.
``"process"``
    ``concurrent.futures.ProcessPoolExecutor``; one chunk per task.
Custom executors implement :class:`Executor` (a ``run(fn, batches)``
method returning results in batch order) and can be passed directly.

Warm pools
----------
The pool executors accept ``persistent=True``: instead of spawning a
fresh pool per ``run`` call, one pool is created lazily and reused
until :meth:`Executor.close` — the substrate of the resident evaluation
service (``repro serve``), where pool spawn and worker re-priming would
otherwise dominate every request.  A persistent
:class:`ProcessExecutor` keeps its workers primed: the engine retains
the shared-memory segment for the pool's lifetime (so late-spawned
workers can still attach) and re-primes through the same initializer
when the pool is recycled.  A worker death (``BrokenExecutor``) in
either pool mode recycles the pool — shutdown (or discard), respawn,
re-run the initializer — and retries the dispatch under the executor's
:class:`~repro.resilience.RetryPolicy` (one retry by default); chunk
evaluation is pure and deterministic, so the retry is byte-identical
to an undisturbed run.  Results with a warm pool are byte-identical to
per-call pools.

Sweeps can carry a :class:`~repro.resilience.Deadline`: the engine
checks the budget between chunk dispatches and raises the typed
:class:`~repro.errors.DeadlineExceeded` instead of finishing work
nobody is waiting for.
"""

from __future__ import annotations

import logging
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from functools import partial
from typing import Any

from repro import observability
from repro._validation import check_positive_int
from repro.enterprise.casestudy import EnterpriseCaseStudy, paper_case_study
from repro.enterprise.design import DesignSpec
from repro.enterprise.roles import ServerRole
from repro.errors import EvaluationError
from repro.evaluation.combined import DesignEvaluation, evaluate_designs_shared
from repro.observability import tracing
from repro.resilience.deadline import Deadline
from repro.resilience.faults import active_plan, fault_point
from repro.resilience.retry import RetryPolicy
from repro.patching.policy import CriticalVulnerabilityPolicy, PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SweepEngine",
]

_logger = logging.getLogger(__name__)

_CACHE_LOOKUPS = observability.counter(
    "repro_engine_cache_requests_total",
    "Engine result-cache lookups by tier and outcome.",
)
_MEMO_HITS = _CACHE_LOOKUPS.labels(tier="memo", outcome="hit")
_DISK_TIER_HITS = _CACHE_LOOKUPS.labels(tier="disk", outcome="hit")
_MEMO_MISSES = _CACHE_LOOKUPS.labels(tier="memo", outcome="miss")
_POOL_RECYCLES = observability.counter(
    "repro_pool_recycles_total",
    "Persistent pools recycled after a worker death.",
)


class Executor:
    """Strategy interface: run ``fn`` over argument batches, in order."""

    name = "abstract"

    #: Parallelism hint used by the engine to size chunks: ``None`` means
    #: "no concurrency, hand me one batch"; pool-backed executors set it
    #: to their worker count.  Custom executors with real parallelism
    #: must set this, or they receive a single batch holding everything.
    max_workers: int | None = None

    def run(self, fn: Callable[..., Any], batches: Sequence[tuple]) -> list:
        """Apply *fn* to each argument tuple; results align with *batches*."""
        raise NotImplementedError

    def iter_run(self, fn: Callable[..., Any], batches: Sequence[tuple]):
        """Yield results in batch order as they complete.

        The incremental companion of :meth:`run`, used by the engine
        when a caller consumes chunk results as they arrive (streaming
        responses, batch-priority preemption).  The default realises
        :meth:`run` eagerly, so custom executors stay correct without
        implementing it; the built-in executors override it with truly
        lazy variants.
        """
        yield from self.run(fn, batches)


class SerialExecutor(Executor):
    """In-process executor (the reference semantics)."""

    name = "serial"

    def run(self, fn: Callable[..., Any], batches: Sequence[tuple]) -> list:
        return [fn(*batch) for batch in batches]

    def iter_run(self, fn: Callable[..., Any], batches: Sequence[tuple]):
        for batch in batches:
            yield fn(*batch)


class _PoolExecutor(Executor):
    """Shared pool plumbing: ordered submit/collect over a futures pool.

    With ``persistent=False`` (the default) every :meth:`run` spawns a
    fresh pool and tears it down afterwards.  With ``persistent=True``
    one pool is created lazily, kept warm across calls, recycled when a
    worker dies, and torn down by :meth:`close` — see the module
    docstring.  Either mode retries a dispatch interrupted by a worker
    death under *retry_policy* (default: one immediate retry — the pool
    respawn is itself the backoff).
    """

    _pool_factory: Callable[..., Any]

    #: Recycle-and-retry after worker death: one retry, no sleep.
    DEFAULT_RETRY = RetryPolicy(attempts=2, base_delay=0.0)

    def __init__(
        self,
        max_workers: int | None = None,
        persistent: bool = False,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if max_workers is not None:
            check_positive_int(max_workers, "max_workers")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.persistent = bool(persistent)
        self.retry_policy = retry_policy or self.DEFAULT_RETRY
        self._pool = None
        #: Identity of the priming the current pool was built with; a
        #: differing key on the next primed dispatch recycles the pool.
        self._pool_key: object = None
        self._initializer: Callable[..., None] | None = None
        self._initargs: tuple = ()
        #: Pools recycled after a worker death (observability counter).
        self.recycle_count = 0

    def run(self, fn: Callable[..., Any], batches: Sequence[tuple]) -> list:
        if not batches:
            return []
        if self.persistent:
            # Reuse the warm pool (whatever it is primed with — the
            # initializer only populates worker globals); even a single
            # batch goes through it, that is the point of keeping it.
            return self._run_persistent(fn, batches)
        if len(batches) == 1:
            # A single batch gains nothing from a pool; skip the spawn.
            return [fn(*batches[0])]
        return self._run_fresh({"max_workers": self.max_workers}, fn, batches)

    def run_with_initializer(
        self,
        fn: Callable[..., Any],
        batches: Sequence[tuple],
        initializer: Callable[..., None],
        initargs: tuple,
        key: object = None,
    ) -> list:
        """Like :meth:`run`, but every pool worker runs *initializer*
        first (the shared-memory attach of the structure-sharing
        pipeline) — so the pool is spawned even for a single batch.

        In persistent mode *key* identifies the priming: the warm pool
        is reused while the key matches and recycled (respawn +
        re-initialize) when it changes.  A ``None`` key never matches,
        so keyless primed dispatches conservatively recycle.
        """
        if not batches:
            return []
        if self.persistent:
            self._prime(initializer, initargs, key)
            return self._run_persistent(fn, batches)
        return self._run_fresh(
            {
                "max_workers": self.max_workers,
                "initializer": initializer,
                "initargs": initargs,
            },
            fn,
            batches,
        )

    def iter_run(self, fn: Callable[..., Any], batches: Sequence[tuple]):
        if not batches:
            return
        if self.persistent:
            yield from self._iter_pooled(fn, batches, persistent=True)
            return
        if len(batches) == 1:
            yield fn(*batches[0])
            return
        yield from self._iter_pooled(
            fn,
            batches,
            persistent=False,
            pool_kwargs={"max_workers": self.max_workers},
        )

    def iter_run_with_initializer(
        self,
        fn: Callable[..., Any],
        batches: Sequence[tuple],
        initializer: Callable[..., None],
        initargs: tuple,
        key: object = None,
    ):
        """Incremental :meth:`run_with_initializer` (same priming rules)."""
        if not batches:
            return
        if self.persistent:
            self._prime(initializer, initargs, key)
            yield from self._iter_pooled(fn, batches, persistent=True)
            return
        yield from self._iter_pooled(
            fn,
            batches,
            persistent=False,
            pool_kwargs={
                "max_workers": self.max_workers,
                "initializer": initializer,
                "initargs": initargs,
            },
        )

    def _iter_pooled(
        self,
        fn,
        batches: Sequence[tuple],
        persistent: bool,
        pool_kwargs: dict | None = None,
    ):
        """Submit all batches, yield results in order, recycle on death.

        The streaming core behind :meth:`iter_run`: a worker death
        resubmits only the batches not yet *yielded* — already-consumed
        results are never produced twice, so incremental consumers see
        exactly one result per batch and the stream stays byte-identical
        to an undisturbed run (chunk evaluation is pure).
        """
        position = 0
        attempt = 1
        while True:
            pool = (
                self._ensure_pool()
                if persistent
                else self._pool_factory(**pool_kwargs)
            )
            try:
                try:
                    futures = [
                        pool.submit(fn, *batch) for batch in batches[position:]
                    ]
                except BrokenExecutor as exc:
                    raise EvaluationError(
                        f"{self.name} pool broke before dispatching "
                        f"{len(batches) - position} batch(es); a worker died "
                        f"while the pool was idle: {exc!r}"
                    ) from exc
                for offset, future in enumerate(futures):
                    try:
                        result = future.result()
                    except BrokenExecutor as exc:
                        index = position + offset
                        raise EvaluationError(
                            f"{self.name} pool broke while batch "
                            f"{index + 1}/{len(batches)}"
                            f"{_batch_labels(batches[index])} was pending; a "
                            "worker died before reporting a result (crash, "
                            "out-of-memory or failed initializer) and may "
                            f"have been running any unfinished batch: {exc!r}"
                        ) from exc
                    yield result
                    position += 1
                return
            except EvaluationError as exc:
                if (
                    not self._worker_died(exc)
                    or attempt >= self.retry_policy.attempts
                ):
                    if persistent and self._worker_died(exc):
                        self._shutdown_pool()
                    raise
                if persistent:
                    self._shutdown_pool()
                self._note_recycle(exc, len(batches) - position)
                pause = self.retry_policy.delay(attempt)
                if pause > 0.0:
                    time.sleep(pause)
                attempt += 1
            finally:
                if not persistent:
                    pool.shutdown(wait=True, cancel_futures=True)

    # -- persistent-pool lifecycle -------------------------------------------

    def _prime(
        self, initializer: Callable[..., None], initargs: tuple, key: object
    ) -> None:
        """Adopt a worker priming; a changed key recycles the pool."""
        if self._pool is not None and (key is None or key != self._pool_key):
            self._shutdown_pool()
        self._initializer = initializer
        self._initargs = initargs
        self._pool_key = key

    def _ensure_pool(self):
        if self._pool is None:
            kwargs: dict[str, Any] = {"max_workers": self.max_workers}
            if self._initializer is not None:
                kwargs["initializer"] = self._initializer
                kwargs["initargs"] = self._initargs
            self._pool = self._pool_factory(**kwargs)
        return self._pool

    @staticmethod
    def _worker_died(exc: BaseException) -> bool:
        return isinstance(exc.__cause__, BrokenExecutor)

    def _note_recycle(self, exc: BaseException, batch_count: int) -> None:
        self.recycle_count += 1
        _POOL_RECYCLES.inc(executor=self.name)
        _logger.debug(
            "%s pool broke (%r); recycling (recycle #%d) and "
            "retrying %d batch(es)",
            self.name,
            exc.__cause__,
            self.recycle_count,
            batch_count,
        )

    def _run_persistent(self, fn, batches: Sequence[tuple]) -> list:
        # A worker death recycles: respawn the pool (fresh workers
        # re-run the stored initializer, re-priming from the still-alive
        # shared segment) and retry the whole dispatch under the retry
        # policy — chunk evaluation is pure and deterministic, so
        # re-running already-finished batches cannot change results.
        def before_retry(_attempt: int, exc: BaseException) -> None:
            self._shutdown_pool()
            self._note_recycle(exc, len(batches))

        try:
            return self.retry_policy.call(
                lambda: self._collect(self._ensure_pool(), fn, batches),
                retry_on=(EvaluationError,),
                should_retry=self._worker_died,
                before_retry=before_retry,
            )
        except EvaluationError as exc:
            if self._worker_died(exc):
                # Broke on every attempt: something systematic (a
                # failing initializer, OOM); leave no zombie pool.
                self._shutdown_pool()
            raise

    def _run_fresh(self, pool_kwargs: dict, fn, batches: Sequence[tuple]) -> list:
        """Per-call pool with the same recycle-and-retry as persistent
        mode — each attempt gets a brand-new pool, so a worker death
        mid-sweep costs one respawn instead of the whole run."""

        def attempt() -> list:
            with self._pool_factory(**pool_kwargs) as pool:
                return self._collect(pool, fn, batches)

        return self.retry_policy.call(
            attempt,
            retry_on=(EvaluationError,),
            should_retry=self._worker_died,
            before_retry=lambda _attempt, exc: self._note_recycle(exc, len(batches)),
        )

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Tear down the persistent pool (idempotent, safe either mode)."""
        self._shutdown_pool()
        self._initializer = None
        self._initargs = ()
        self._pool_key = None

    def __enter__(self) -> "_PoolExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _collect(self, pool, fn, batches: Sequence[tuple]) -> list:
        try:
            futures = [pool.submit(fn, *batch) for batch in batches]
        except BrokenExecutor as exc:
            # The pool can already be broken at submit time (a worker
            # died while the pool sat idle between persistent runs).
            raise EvaluationError(
                f"{self.name} pool broke before dispatching "
                f"{len(batches)} batch(es); a worker died while the "
                f"pool was idle: {exc!r}"
            ) from exc
        results = []
        for position, future in enumerate(futures):
            try:
                results.append(future.result())
            except BrokenExecutor as exc:
                # Every unfinished future raises once the pool breaks;
                # this batch is only the first to surface it — the dead
                # worker may have been running any unfinished batch.
                raise EvaluationError(
                    f"{self.name} pool broke while batch "
                    f"{position + 1}/{len(batches)}"
                    f"{_batch_labels(batches[position])} was pending; a "
                    "worker died before reporting a result (crash, "
                    "out-of-memory or failed initializer) and may have "
                    f"been running any unfinished batch: {exc!r}"
                ) from exc
        return results


class ThreadExecutor(_PoolExecutor):
    """``ThreadPoolExecutor``-backed executor with ordered results.

    The cheap alternative to a process pool: no fork, no pickling, and
    real parallelism during the solve phase because scipy's ``spsolve``
    releases the GIL.  Chunk workers share nothing mutable (each builds
    its own evaluator pair), so results are identical to serial.
    """

    name = "thread"
    _pool_factory = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """``ProcessPoolExecutor``-backed executor with ordered results."""

    name = "process"
    _pool_factory = ProcessPoolExecutor


def _serial_factory(max_workers: int | None) -> Executor:
    if max_workers is not None:
        raise EvaluationError(
            "max_workers requires a pool executor ('thread' or 'process'); "
            "the serial executor runs everything in-process"
        )
    return SerialExecutor()


_EXECUTORS: dict[str, Callable[[int | None], Executor]] = {
    "serial": _serial_factory,
    "thread": lambda max_workers: ThreadExecutor(max_workers),
    "process": lambda max_workers: ProcessExecutor(max_workers),
}


def _resolve_executor(
    executor: str | Executor, max_workers: int | None
) -> Executor:
    if isinstance(executor, Executor):
        if max_workers is not None:
            raise EvaluationError(
                "max_workers only applies to named executors; configure "
                f"the {type(executor).__name__} instance directly"
            )
        return executor
    factory = _EXECUTORS.get(executor)
    if factory is None:
        raise EvaluationError(
            f"unknown executor {executor!r}; choose from {sorted(_EXECUTORS)} "
            "or pass an Executor instance"
        )
    return factory(max_workers)


#: Design labels quoted in failure messages before eliding the rest; a
#: large chunk would otherwise inflate the exception with every label.
_MAX_BATCH_LABELS = 8


def _batch_labels(batch: tuple) -> str:
    """Human-readable design labels hidden inside an argument batch.

    Bounded: at most :data:`_MAX_BATCH_LABELS` labels are spelled out,
    the rest collapse into an "… and N more" suffix.
    """
    for element in reversed(batch):
        if isinstance(element, (list, tuple)) and element:
            items = list(element)
            labels = [
                getattr(item, "label", None)
                for item in items[:_MAX_BATCH_LABELS]
            ]
            if all(label is not None for label in labels):
                more = (
                    ""
                    if len(items) <= _MAX_BATCH_LABELS
                    else f", … and {len(items) - _MAX_BATCH_LABELS} more"
                )
                return f" (designs: {', '.join(labels)}{more})"
    return ""


def _checked_chunk(
    deadline: Deadline | None,
    checkpoint: Callable[[], None] | None,
    fn: Callable[..., Any],
    *args: Any,
) -> Any:
    """In-process chunk wrapper: deadline and preemption per chunk.

    *checkpoint* is the service's priority seam — it raises (a
    preemption signal the caller catches) when a higher-priority
    request is waiting, so batch sweeps stop at the next chunk boundary
    exactly like an exhausted deadline does.
    """
    if deadline is not None:
        deadline.check("chunk evaluation")
    if checkpoint is not None:
        checkpoint()
    return fn(*args)


def _evaluate_chunk(
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    database: VulnerabilityDatabase | None,
    designs: Sequence[DesignSpec],
    structure_sharing: bool = True,
    telemetry: dict | None = None,
) -> list[DesignEvaluation]:
    """Worker entry point: evaluate one chunk with shared evaluators."""
    fault_point("worker.chunk", worker_only=True)
    return observability.capture(
        telemetry,
        lambda: evaluate_designs_shared(
            designs,
            case_study,
            policy,
            database=database,
            structure_sharing=structure_sharing,
        ),
    )


def _timeline_chunk(
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    database: VulnerabilityDatabase | None,
    times: tuple[float, ...],
    tolerance: float,
    designs: Sequence[DesignSpec],
    structure_sharing: bool = True,
    campaign=None,
    method: str = "uniformisation",
    telemetry: dict | None = None,
):
    """Worker entry point: patch timelines of one chunk, shared evaluators."""
    from repro.evaluation.timeline import evaluate_timelines_shared

    fault_point("worker.chunk", worker_only=True)
    return observability.capture(
        telemetry,
        lambda: evaluate_timelines_shared(
            designs,
            times,
            case_study,
            policy,
            database=database,
            tolerance=tolerance,
            structure_sharing=structure_sharing,
            campaign=campaign,
            method=method,
        ),
    )


def _evaluate_chunk_primed(
    security_evaluator,
    availability_evaluator,
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    designs: Sequence[DesignSpec],
) -> list[DesignEvaluation]:
    """In-process chunk over the engine's long-lived evaluator pair."""
    return evaluate_designs_shared(
        designs,
        case_study,
        policy,
        security_evaluator=security_evaluator,
        availability_evaluator=availability_evaluator,
    )


def _timeline_chunk_primed(
    security_evaluator,
    availability_evaluator,
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    times: tuple[float, ...],
    tolerance: float,
    campaign,
    method: str,
    designs: Sequence[DesignSpec],
):
    """In-process timeline chunk over the engine's evaluator pair."""
    from repro.evaluation.timeline import evaluate_timelines_shared

    return evaluate_timelines_shared(
        designs,
        times,
        case_study,
        policy,
        tolerance=tolerance,
        security_evaluator=security_evaluator,
        availability_evaluator=availability_evaluator,
        campaign=campaign,
        method=method,
    )


def _map_chunk(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    telemetry: dict | None = None,
) -> list:
    """Worker entry point for :meth:`SweepEngine.map`."""
    fault_point("worker.chunk", worker_only=True)
    return observability.capture(
        telemetry, lambda: [fn(item) for item in items]
    )


class SweepEngine:
    """Evaluate design spaces with caching and pluggable parallelism.

    Parameters
    ----------
    case_study:
        Enterprise description (default: the paper's).
    policy:
        Patch policy (default: critical-only, base score > 8.0).
    executor:
        ``"serial"``, ``"thread"``, ``"process"`` or an :class:`Executor`
        instance.
    max_workers:
        Worker cap for the named pool executors; rejected alongside an
        :class:`Executor` instance (configure the instance directly).
    chunk_size:
        Designs per executor task; defaults to an even split over
        ``4 * workers`` tasks (at least one design per task).
    database:
        Vulnerability database for variant lookups of heterogeneous
        designs (default: the case study's own database).
    structure_sharing:
        The structure-sharing pipeline (default on).  Serial and thread
        executors share one long-lived evaluator pair across the whole
        sweep (one lower-layer solve per role, one canonical exploration
        per transition pattern); the process executor precomputes both
        in the parent and publishes the numeric arrays to pool workers
        over ``multiprocessing.shared_memory``, so chunks carry only
        designs — no case-study re-pickling, no per-chunk lower-layer
        re-solves.  Results are byte-identical with sharing on or off,
        across every executor.
    cache_path:
        Optional sqlite file for a
        :class:`~repro.evaluation.cache.PersistentEvaluationCache`
        behind the in-memory memo: evaluations (and timelines) found on
        disk skip computation entirely, and fresh results are written
        back, so repeated CLI sweeps across sessions only pay for new
        designs.  Entries are keyed by ``DesignSpec.cache_key()`` plus a
        fingerprint of the case study / policy / database, so a cache
        file can never serve results from a different context.

    Examples
    --------
    >>> engine = SweepEngine()
    >>> evaluations = engine.sweep(["dns", "web"], max_replicas=2)
    >>> [e.design.total_servers for e in evaluations]
    [2, 3, 3, 4]
    """

    def __init__(
        self,
        case_study: EnterpriseCaseStudy | None = None,
        policy: PatchPolicy | None = None,
        executor: str | Executor = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        database: VulnerabilityDatabase | None = None,
        structure_sharing: bool = True,
        cache_path=None,
    ) -> None:
        self.case_study = case_study if case_study is not None else paper_case_study()
        self.policy = policy if policy is not None else CriticalVulnerabilityPolicy()
        self.executor = _resolve_executor(executor, max_workers)
        if chunk_size is not None:
            check_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.database = database
        self.structure_sharing = bool(structure_sharing)
        self._security_evaluator = None
        self._availability_evaluator = None
        if cache_path is not None:
            from repro.evaluation.cache import PersistentEvaluationCache

            self.persistent_cache = PersistentEvaluationCache(cache_path)
        else:
            self.persistent_cache = None
        self._fingerprint: str | None = None
        self._cache: dict[DesignSpec, DesignEvaluation] = {}
        self._timelines: dict[tuple, Any] = {}
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        #: Deadline of the in-flight evaluate/timeline call, if any.
        self._deadline: Deadline | None = None
        #: Preemption checkpoint of the in-flight call (raises to stop
        #: at the next chunk boundary), and the per-chunk progress
        #: consumer — both set only for the duration of one call.
        self._checkpoint: Callable[[], None] | None = None
        self._progress: Callable[[list], None] | None = None
        # Arm any REPRO_FAULTS plan now, in the coordinating process:
        # this materialises the shared one-shot token directory before
        # pool workers fork, so they inherit it through the environment.
        active_plan()
        # Warm-pool (persistent executor) state: the retained
        # shared-memory context and the deduped designs folded into it.
        # The segment must outlive each dispatch so late-spawned or
        # recycled workers can still attach and re-prime.
        self._warm_context = None
        self._warm_designs: list[DesignSpec] = []
        self._warm_design_set: set[DesignSpec] = set()

    # -- sweeping -----------------------------------------------------------

    def evaluate(
        self,
        designs: Iterable[DesignSpec],
        deadline: Deadline | None = None,
        checkpoint: Callable[[], None] | None = None,
        progress: Callable[[list], None] | None = None,
    ) -> list[DesignEvaluation]:
        """Evaluate *designs* (any mix of spec kinds), in input order.

        *deadline* bounds the call: the budget is checked between chunk
        dispatches (and between chunks on in-process executors), raising
        :class:`~repro.errors.DeadlineExceeded` once spent.  Results
        memoised by earlier calls are free, so a retried call only pays
        for designs the deadline cut off.

        *checkpoint* is called at the same chunk boundaries as the
        deadline check; raising from it aborts the sweep there — the
        service's batch-priority preemption seam.  Chunks finished
        before the abort stay memoised, so a resumed call pays only for
        the rest.  *progress* receives each chunk's evaluations as they
        complete (after memoisation; cached designs never reach it) —
        the streaming-response seam.  Either one forces chunked
        dispatch on the serial executor, like a deadline does.
        """
        designs = list(designs)
        self._deadline = deadline
        self._checkpoint = checkpoint
        self._progress = progress
        try:
            return self._evaluate(designs)
        finally:
            self._deadline = None
            self._checkpoint = None
            self._progress = None

    def _evaluate(self, designs: list[DesignSpec]) -> list[DesignEvaluation]:
        with tracing.span("engine:evaluate", designs=len(designs)) as sp:
            pending: list[DesignSpec] = []
            seen_pending: set[DesignSpec] = set()
            for design in designs:
                if design in self._cache:
                    self._hits += 1
                    _MEMO_HITS.inc()
                    continue
                if self.persistent_cache is not None:
                    stored = self.persistent_cache.get(
                        "evaluation", self._disk_key(design)
                    )
                    if stored is not None:
                        self._cache[design] = stored
                        self._disk_hits += 1
                        _DISK_TIER_HITS.inc()
                        continue
                if design not in seen_pending:
                    self._misses += 1
                    _MEMO_MISSES.inc()
                    seen_pending.add(design)
                    pending.append(design)
            sp.add(pending=len(pending))
            if pending:
                for chunk_result in self._run_evaluate_chunks(
                    self._chunks(pending)
                ):
                    for evaluation in chunk_result:
                        self._cache[evaluation.design] = evaluation
                        if self.persistent_cache is not None:
                            self.persistent_cache.put(
                                "evaluation",
                                self._disk_key(evaluation.design),
                                evaluation,
                            )
                    if self._progress is not None:
                        self._progress(list(chunk_result))
            return [self._cache[design] for design in designs]

    def timeline(
        self,
        designs: Iterable[DesignSpec],
        times: Sequence[float],
        tolerance: float = 1e-10,
        campaign=None,
        method: str = "uniformisation",
        deadline: Deadline | None = None,
        checkpoint: Callable[[], None] | None = None,
        progress: Callable[[list], None] | None = None,
    ) -> list:
        """Patch timelines of *designs* over *times*, in input order.

        The transient companion of :meth:`evaluate`: same chunked
        dispatch (one shared evaluator pair per chunk), same
        deterministic ordering across executors, same two-level
        memoisation — in-memory per ``(design, time grid, tolerance,
        campaign)`` and, when a ``cache_path`` is configured, persisted
        on disk.  *campaign* optionally stages the rollout
        (:class:`~repro.patching.campaign.PatchCampaign`); *method*
        selects the transient backend (part of both cache keys); see
        :func:`repro.evaluation.timeline.evaluate_timeline`.  *deadline*
        bounds the call exactly as in :meth:`evaluate`, and
        *checkpoint*/*progress* are the same preemption and streaming
        seams.
        """
        designs = list(designs)
        self._deadline = deadline
        self._checkpoint = checkpoint
        self._progress = progress
        try:
            return self._timeline(designs, times, tolerance, campaign, method)
        finally:
            self._deadline = None
            self._checkpoint = None
            self._progress = None

    def _timeline(
        self,
        designs: list[DesignSpec],
        times: Sequence[float],
        tolerance: float,
        campaign,
        method: str,
    ) -> list:
        times_key = tuple(float(t) for t in times)
        with tracing.span(
            "engine:timeline", designs=len(designs), points=len(times_key)
        ) as sp:
            pending: list[DesignSpec] = []
            seen_pending: set[DesignSpec] = set()
            for design in designs:
                key = (design, times_key, tolerance, campaign, method)
                if key in self._timelines:
                    self._hits += 1
                    _MEMO_HITS.inc()
                    continue
                if self.persistent_cache is not None:
                    stored = self.persistent_cache.get(
                        "timeline",
                        self._timeline_disk_key(
                            design, times_key, tolerance, campaign, method
                        ),
                    )
                    if stored is not None:
                        self._timelines[key] = stored
                        self._disk_hits += 1
                        _DISK_TIER_HITS.inc()
                        continue
                if design not in seen_pending:
                    self._misses += 1
                    _MEMO_MISSES.inc()
                    seen_pending.add(design)
                    pending.append(design)
            sp.add(pending=len(pending))
            if pending:
                for chunk_result in self._run_timeline_chunks(
                    self._chunks(pending), times_key, tolerance, campaign,
                    method,
                ):
                    for result in chunk_result:
                        key = (
                            result.design, times_key, tolerance, campaign,
                            method,
                        )
                        self._timelines[key] = result
                        if self.persistent_cache is not None:
                            self.persistent_cache.put(
                                "timeline",
                                self._timeline_disk_key(
                                    result.design, times_key, tolerance,
                                    campaign, method,
                                ),
                                result,
                            )
                    if self._progress is not None:
                        self._progress(list(chunk_result))
            return [
                self._timelines[
                    (design, times_key, tolerance, campaign, method)
                ]
                for design in designs
            ]

    def _timeline_disk_key(
        self,
        design: DesignSpec,
        times_key: tuple[float, ...],
        tolerance: float,
        campaign,
        method: str = "uniformisation",
    ) -> str:
        """Timeline cache key; default-shaped keys keep their old form.

        Campaign-less, default-method keys keep the original tuple shape
        so the fingerprint bump (not the key shape) is what retires
        pre-dispatch cache entries.
        """
        parts: tuple = (design, times_key, tolerance)
        if campaign is not None:
            parts = parts + (campaign.cache_key(),)
        if method != "uniformisation":
            parts = parts + (("method", method),)
        return self._disk_key(*parts)

    def sweep(
        self,
        roles: Sequence[str],
        max_replicas: int,
        max_total: int | None = None,
    ) -> list[DesignEvaluation]:
        """Enumerate and evaluate every homogeneous design of the space."""
        from repro.evaluation.sweep import enumerate_designs

        return self.evaluate(enumerate_designs(roles, max_replicas, max_total))

    def sweep_variants(
        self,
        roles: Sequence[str],
        variants: dict[str, Sequence[ServerRole]],
        max_replicas: int,
        max_total: int | None = None,
    ) -> list[DesignEvaluation]:
        """Enumerate and evaluate the heterogeneous (diversity) space.

        *variants* maps each role to its candidate stacks; see
        :func:`repro.evaluation.sweep.enumerate_heterogeneous_designs`.
        """
        from repro.evaluation.sweep import enumerate_heterogeneous_designs

        return self.evaluate(
            enumerate_heterogeneous_designs(roles, variants, max_replicas, max_total)
        )

    def pareto(
        self,
        evaluations: Iterable[DesignEvaluation],
        after_patch: bool = True,
    ) -> list[DesignEvaluation]:
        """The (lower ASP, higher COA) Pareto front of *evaluations*."""
        from repro.evaluation.sweep import pareto_front

        return pareto_front(evaluations, after_patch=after_patch)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Ordered map of a picklable *fn* over *items* via the executor.

        The escape hatch for per-design measures beyond the standard
        snapshot (MTTC, survivability, cost): benchmarks and extensions
        fan out through the same executor without reimplementing
        chunking or ordering.
        """
        items = list(items)
        options = observability.telemetry_options()
        batches = [(fn, chunk, options) for chunk in self._chunks(items)]
        results: list[Any] = []
        for chunk_result in self._dispatch(_map_chunk, batches):
            results.extend(chunk_result)
        return results

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release warm-pool resources (idempotent).

        Unlinks the retained shared-memory segment, shuts down the
        executor's persistent pool (per-call pools have nothing to shut
        down) and closes the persistent disk cache.  The engine remains
        usable for serial evaluation afterwards, but warm-pool engines
        should be treated as spent — use the context-manager form::

            with SweepEngine(executor=ProcessExecutor(persistent=True)) as engine:
                engine.evaluate(designs)
        """
        if self._warm_context is not None:
            self._warm_context.unlink()
            self._warm_context = None
        closer = getattr(self.executor, "close", None)
        if callable(closer):
            closer()
        if self.persistent_cache is not None:
            self.persistent_cache.close()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cache bookkeeping ----------------------------------------------------

    def clear_cache(self) -> None:
        """Drop memoised results and counters (the disk cache survives)."""
        self._cache.clear()
        self._timelines.clear()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    @property
    def cache_info(self) -> dict[str, int]:
        """``{"hits", "misses", "size"}`` of the in-memory result cache
        (plus ``"disk_hits"`` when a persistent cache is configured)."""
        info = {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache) + len(self._timelines),
        }
        if self.persistent_cache is not None:
            info["disk_hits"] = self._disk_hits
            info["disk_degraded"] = int(self.persistent_cache.degraded)
        return info

    @property
    def shared_context_info(self) -> dict | None:
        """Telemetry of the retained shared-memory context (or None)."""
        if self._warm_context is None:
            return None
        return self._warm_context.describe()

    # -- internal -------------------------------------------------------------

    def _shared_evaluators(self):
        """The engine's long-lived evaluator pair (lazily created).

        Shared across every serial/thread sweep this engine runs, and
        used as the precompute cache feeding the shared-memory context
        of process sweeps — repeated sweeps only solve structures and
        aggregates they have not seen before.
        """
        if self._availability_evaluator is None:
            from repro.evaluation.availability import AvailabilityEvaluator
            from repro.evaluation.security import SecurityEvaluator

            _logger.debug(
                "creating the engine's shared evaluator pair (executor=%s)",
                self.executor.name,
            )
            self._security_evaluator = SecurityEvaluator(
                self.case_study, database=self.database
            )
            self._availability_evaluator = AvailabilityEvaluator(
                self.case_study, self.policy, database=self.database
            )
        return self._security_evaluator, self._availability_evaluator

    @property
    def _persistent_pool(self) -> bool:
        """Whether the executor keeps a warm pool across dispatches."""
        return bool(getattr(self.executor, "persistent", False))

    def _use_shared_memory(self, chunks: Sequence[Sequence[Any]]) -> bool:
        """Whether this dispatch goes through the shared-memory pool."""
        return (
            self.structure_sharing
            and isinstance(self.executor, ProcessExecutor)
            and (len(chunks) > 1 or self._persistent_pool)
        )

    def _shared_context(self, designs: Sequence[Any]):
        from repro.evaluation.shared_memory import SharedSweepContext

        _, availability = self._shared_evaluators()
        return SharedSweepContext.build(
            self.case_study,
            self.policy,
            self.database,
            designs,
            evaluator=availability,
        )

    def _warm_shared_context(self, designs: Sequence[Any]):
        """The retained context for warm-pool dispatches.

        Reused as long as it covers every design of this dispatch (the
        common case: repeated sweeps over one space).  A design bringing
        a new role, variant or transition pattern rebuilds the context
        over everything seen so far — the parent-side evaluator caches
        make that incremental — and the changed segment name recycles
        the pool, so fresh workers re-prime with the superset.
        """
        if self._warm_context is not None and self._warm_context.covers(
            designs
        ):
            _logger.debug(
                "reusing warm shared context %s for %d design(s)",
                self._warm_context.segment_name,
                len(designs),
            )
            return self._warm_context
        for design in designs:
            if design not in self._warm_design_set:
                self._warm_design_set.add(design)
                self._warm_designs.append(design)
        previous = self._warm_context
        _logger.debug(
            "rebuilding warm shared context over %d design(s) "
            "(previous %s)",
            len(self._warm_designs),
            "covered too little" if previous is not None else "absent",
        )
        self._warm_context = self._shared_context(self._warm_designs)
        if previous is not None:
            # Old workers copied the arrays out at initialization; only
            # *new* workers attach, and they will use the new segment.
            previous.unlink()
        return self._warm_context

    @property
    def _incremental(self) -> bool:
        """Whether the in-flight call consumes chunk results one by one.

        True when a checkpoint (preemption) or progress (streaming)
        consumer is attached: dispatches then go through the executor's
        ``iter_run`` generators so finished chunks are memoised — and
        surfaced — before later ones compute.  Plain calls keep the
        eager list path (identical results, one fewer moving part).
        """
        return self._checkpoint is not None or self._progress is not None

    def _dispatch(
        self,
        fn: Callable[..., Any],
        batches: Sequence[tuple],
        runner: Callable[..., list] | None = None,
    ):
        """Run *batches* through the executor, absorbing chunk telemetry.

        Worker-process chunks come back wrapped in
        :class:`~repro.observability.ChunkTelemetry`; absorbing merges
        their metric deltas and spans into this process and unwraps the
        untouched results, so callers see the same shapes either way.

        An active sweep deadline is checked here before any work is
        submitted; on in-process executors (serial/thread) each chunk
        additionally re-checks the budget (and the preemption
        checkpoint) at entry, so a sweep stops at the next chunk
        boundary once the budget is spent or a higher-priority request
        arrives.  Returns a list, or a lazy generator when the call is
        :attr:`_incremental`.
        """
        deadline, checkpoint = self._deadline, self._checkpoint
        if deadline is not None:
            deadline.check("chunk dispatch")
        if checkpoint is not None:
            checkpoint()
        wrapped = False
        if (
            runner is None
            and (deadline is not None or checkpoint is not None)
            and isinstance(self.executor, (SerialExecutor, ThreadExecutor))
        ):
            # In-process execution: safe to close over the deadline and
            # checkpoint (process pools would need to pickle them; the
            # pre-submit check above still bounds those dispatches).
            fn = partial(_checked_chunk, deadline, checkpoint, fn)
            wrapped = True
        if self._incremental:
            return self._dispatch_iter(fn, batches, runner, wrapped)
        if runner is None:
            runner = self.executor.run
        dispatched = time.time()
        with tracing.span(
            "engine:dispatch",
            executor=self.executor.name,
            chunks=len(batches),
        ):
            results = runner(fn, batches)
            return [
                observability.absorb(result, dispatched)
                for result in results
            ]

    def _dispatch_iter(
        self,
        fn: Callable[..., Any],
        batches: Sequence[tuple],
        runner: Callable[..., Any] | None,
        wrapped: bool,
    ):
        """The incremental dispatch: yield absorbed chunk results.

        Pool-backed executors cannot close over the checkpoint (it is
        not picklable), so for them the checkpoint also runs between
        consumed results — a preemption there forfeits at most the one
        chunk computed since the last boundary, which simply recomputes
        on resume (chunk evaluation is pure).
        """
        checkpoint = self._checkpoint
        if runner is None:
            runner = self.executor.iter_run
        dispatched = time.time()
        with tracing.span(
            "engine:dispatch",
            executor=self.executor.name,
            chunks=len(batches),
        ):
            first = True
            for result in runner(fn, batches):
                if not first and checkpoint is not None and not wrapped:
                    checkpoint()
                first = False
                yield observability.absorb(result, dispatched)

    def _run_evaluate_chunks(self, chunks: Sequence[Sequence[Any]]) -> list:
        if not self.structure_sharing:
            options = observability.telemetry_options()
            batches = [
                (
                    self.case_study, self.policy, self.database, chunk,
                    False, options,
                )
                for chunk in chunks
            ]
            return self._dispatch(_evaluate_chunk, batches)
        if self._use_shared_memory(chunks):
            from repro.evaluation.shared_memory import shared_evaluate_chunk

            options = observability.telemetry_options()
            return self._run_shared_memory(
                shared_evaluate_chunk,
                [(chunk, options) for chunk in chunks],
                chunks,
            )
        security, availability = self._shared_evaluators()
        fn = partial(
            _evaluate_chunk_primed,
            security,
            availability,
            self.case_study,
            self.policy,
        )
        return self._dispatch(fn, [(chunk,) for chunk in chunks])

    def _run_shared_memory(
        self,
        fn: Callable[..., Any],
        batches: Sequence[tuple],
        chunks: Sequence[Sequence[Any]],
    ) -> list:
        """Dispatch *batches* through the shared-memory process pool.

        Per-call pools build a context for exactly this dispatch and
        unlink it once the pool has drained.  A persistent (warm) pool
        instead reuses the engine-retained context, keyed by its segment
        name: an unchanged key keeps the primed workers, a changed one
        recycles the pool so fresh workers re-prime from the new
        segment; the retained segment is released by :meth:`close`.
        """
        from repro.evaluation.shared_memory import initialize_worker

        designs = [design for chunk in chunks for design in chunk]
        primed_runner = (
            self.executor.iter_run_with_initializer
            if self._incremental
            else self.executor.run_with_initializer
        )
        if self._persistent_pool:
            context = self._warm_shared_context(designs)
            return self._dispatch(
                fn,
                batches,
                runner=partial(
                    primed_runner,
                    initializer=initialize_worker,
                    initargs=(context.worker_payload(),),
                    key=context.segment_name,
                ),
            )
        if self._incremental:
            return self._iter_fresh_shared(fn, batches, designs, primed_runner)
        context = self._shared_context(designs)
        try:
            return self._dispatch(
                fn,
                batches,
                runner=partial(
                    primed_runner,
                    initializer=initialize_worker,
                    initargs=(context.worker_payload(),),
                ),
            )
        finally:
            context.unlink()

    def _iter_fresh_shared(self, fn, batches, designs, primed_runner):
        """Incremental per-call shared-memory dispatch (generator).

        The ``finally: unlink`` of the eager path would tear the
        segment down before a lazy consumer ran anything; here the
        unlink happens when the generator is exhausted (or closed).
        """
        from repro.evaluation.shared_memory import initialize_worker

        context = self._shared_context(designs)
        try:
            yield from self._dispatch(
                fn,
                batches,
                runner=partial(
                    primed_runner,
                    initializer=initialize_worker,
                    initargs=(context.worker_payload(),),
                ),
            )
        finally:
            context.unlink()

    def _run_timeline_chunks(
        self,
        chunks: Sequence[Sequence[Any]],
        times_key: tuple[float, ...],
        tolerance: float,
        campaign=None,
        method: str = "uniformisation",
    ) -> list:
        if not self.structure_sharing:
            options = observability.telemetry_options()
            batches = [
                (
                    self.case_study,
                    self.policy,
                    self.database,
                    times_key,
                    tolerance,
                    chunk,
                    False,
                    campaign,
                    method,
                    options,
                )
                for chunk in chunks
            ]
            return self._dispatch(_timeline_chunk, batches)
        if self._use_shared_memory(chunks):
            from repro.evaluation.shared_memory import shared_timeline_chunk

            options = observability.telemetry_options()
            return self._run_shared_memory(
                shared_timeline_chunk,
                [
                    (times_key, tolerance, chunk, campaign, method, options)
                    for chunk in chunks
                ],
                chunks,
            )
        security, availability = self._shared_evaluators()
        fn = partial(
            _timeline_chunk_primed,
            security,
            availability,
            self.case_study,
            self.policy,
            times_key,
            tolerance,
            campaign,
            method,
        )
        return self._dispatch(fn, [(chunk,) for chunk in chunks])

    def _disk_key(self, design: DesignSpec, *parts) -> str:
        """Persistent-cache key: context fingerprint + design identity."""
        from repro.evaluation.cache import PersistentEvaluationCache, context_fingerprint

        if self._fingerprint is None:
            self._fingerprint = context_fingerprint(
                self.case_study, self.policy, self.database
            )
        return PersistentEvaluationCache.entry_key(
            self._fingerprint, design.cache_key(), *parts
        )

    def _chunks(self, items: Sequence[Any]) -> list[Sequence[Any]]:
        if not items:
            return []
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            workers = self.executor.max_workers
            if workers is None:
                # Serial executors gain nothing from splitting; one chunk
                # keeps a single shared evaluator pair across all designs.
                # Under a deadline (or a preemption checkpoint, or a
                # streaming consumer) the chunk boundary is the abort /
                # hand-off point, so split enough for it to actually run.
                split = (
                    self._deadline is not None
                    or self._checkpoint is not None
                    or self._progress is not None
                )
                size = 4 if split else len(items)
            else:
                size = max(1, -(-len(items) // max(1, 4 * workers)))
        return [items[i : i + size] for i in range(0, len(items), size)]

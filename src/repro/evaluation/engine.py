"""Parallel design-sweep engine over the security/availability pipeline.

This module is the scaling entry point for whole-design-space studies
(the paper's Figs. 6-7 generalised from five designs to thousands).  It
wraps :func:`repro.evaluation.combined.evaluate_design` behind a
:class:`SweepEngine` with pluggable executors and deterministic output.

The engine is design-kind agnostic: anything implementing the
:class:`~repro.enterprise.design.DesignSpec` protocol — homogeneous
:class:`~repro.enterprise.design.RedundancyDesign`, diverse-stack
:class:`~repro.enterprise.heterogeneous.HeterogeneousDesign`, or a mix —
is cached, chunked and dispatched identically.

Caching / batching contract
---------------------------
* **Engine-level result cache.**  ``SweepEngine.evaluate`` memoises one
  :class:`DesignEvaluation` per design spec (specs are hashable value
  objects).  Re-sweeping an overlapping space only pays for the designs
  not seen before; ``clear_cache()`` resets it.
* **Chunked dispatch.**  Uncached designs are split into contiguous
  chunks and each chunk is evaluated by one executor call through the
  module-level :func:`_evaluate_chunk`.  Within a chunk the shared
  ``SecurityEvaluator``/``AvailabilityEvaluator`` pair amortises the
  per-role and per-variant lower-layer SRN solves (Table V aggregates)
  across designs, so chunking is what keeps the process pool from
  re-solving the lower layer once per design.
* **Deterministic ordering.**  Results are always returned in input
  order, regardless of executor: chunks are indexed at submission and
  reassembled positionally.  The serial, thread and process executors
  run the *same* chunk function, so a parallel sweep is byte-identical
  to a serial one.
* **Pickling boundary.**  Only the case study, the policy, the variant
  database and the designs cross the process boundary (all plain value
  objects).  SRN internals (closures, marking-dependent rates) never
  leave the worker that builds them.

Executors
---------
``"serial"``
    In-process loop; zero overhead, the default.
``"thread"``
    ``concurrent.futures.ThreadPoolExecutor``; the cheap parallelism —
    no fork, no pickling — that pays off because the solve phase spends
    its time in scipy's ``spsolve``, which releases the GIL.
``"process"``
    ``concurrent.futures.ProcessPoolExecutor``; one chunk per task.
Custom executors implement :class:`Executor` (a ``run(fn, batches)``
method returning results in batch order) and can be passed directly.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro._validation import check_positive_int
from repro.enterprise.casestudy import EnterpriseCaseStudy, paper_case_study
from repro.enterprise.design import DesignSpec
from repro.enterprise.roles import ServerRole
from repro.errors import EvaluationError
from repro.evaluation.combined import DesignEvaluation, evaluate_designs_shared
from repro.patching.policy import CriticalVulnerabilityPolicy, PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SweepEngine",
]


class Executor:
    """Strategy interface: run ``fn`` over argument batches, in order."""

    name = "abstract"

    #: Parallelism hint used by the engine to size chunks: ``None`` means
    #: "no concurrency, hand me one batch"; pool-backed executors set it
    #: to their worker count.  Custom executors with real parallelism
    #: must set this, or they receive a single batch holding everything.
    max_workers: int | None = None

    def run(self, fn: Callable[..., Any], batches: Sequence[tuple]) -> list:
        """Apply *fn* to each argument tuple; results align with *batches*."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process executor (the reference semantics)."""

    name = "serial"

    def run(self, fn: Callable[..., Any], batches: Sequence[tuple]) -> list:
        return [fn(*batch) for batch in batches]


class _PoolExecutor(Executor):
    """Shared pool plumbing: ordered submit/collect over a futures pool."""

    _pool_factory: Callable[..., Any]

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None:
            check_positive_int(max_workers, "max_workers")
        self.max_workers = max_workers or os.cpu_count() or 1

    def run(self, fn: Callable[..., Any], batches: Sequence[tuple]) -> list:
        if not batches:
            return []
        if len(batches) == 1:
            # A single batch gains nothing from a pool; skip the spawn.
            return [fn(*batches[0])]
        with self._pool_factory(max_workers=self.max_workers) as pool:
            futures = [pool.submit(fn, *batch) for batch in batches]
            return [future.result() for future in futures]


class ThreadExecutor(_PoolExecutor):
    """``ThreadPoolExecutor``-backed executor with ordered results.

    The cheap alternative to a process pool: no fork, no pickling, and
    real parallelism during the solve phase because scipy's ``spsolve``
    releases the GIL.  Chunk workers share nothing mutable (each builds
    its own evaluator pair), so results are identical to serial.
    """

    name = "thread"
    _pool_factory = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """``ProcessPoolExecutor``-backed executor with ordered results."""

    name = "process"
    _pool_factory = ProcessPoolExecutor


def _serial_factory(max_workers: int | None) -> Executor:
    if max_workers is not None:
        raise EvaluationError(
            "max_workers requires a pool executor ('thread' or 'process'); "
            "the serial executor runs everything in-process"
        )
    return SerialExecutor()


_EXECUTORS: dict[str, Callable[[int | None], Executor]] = {
    "serial": _serial_factory,
    "thread": lambda max_workers: ThreadExecutor(max_workers),
    "process": lambda max_workers: ProcessExecutor(max_workers),
}


def _resolve_executor(
    executor: str | Executor, max_workers: int | None
) -> Executor:
    if isinstance(executor, Executor):
        if max_workers is not None:
            raise EvaluationError(
                "max_workers only applies to named executors; configure "
                f"the {type(executor).__name__} instance directly"
            )
        return executor
    factory = _EXECUTORS.get(executor)
    if factory is None:
        raise EvaluationError(
            f"unknown executor {executor!r}; choose from {sorted(_EXECUTORS)} "
            "or pass an Executor instance"
        )
    return factory(max_workers)


def _evaluate_chunk(
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    database: VulnerabilityDatabase | None,
    designs: Sequence[DesignSpec],
) -> list[DesignEvaluation]:
    """Worker entry point: evaluate one chunk with shared evaluators."""
    return evaluate_designs_shared(designs, case_study, policy, database=database)


def _timeline_chunk(
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    database: VulnerabilityDatabase | None,
    times: tuple[float, ...],
    tolerance: float,
    designs: Sequence[DesignSpec],
):
    """Worker entry point: patch timelines of one chunk, shared evaluators."""
    from repro.evaluation.timeline import evaluate_timelines_shared

    return evaluate_timelines_shared(
        designs, times, case_study, policy, database=database, tolerance=tolerance
    )


def _map_chunk(fn: Callable[[Any], Any], items: Sequence[Any]) -> list:
    """Worker entry point for :meth:`SweepEngine.map`."""
    return [fn(item) for item in items]


class SweepEngine:
    """Evaluate design spaces with caching and pluggable parallelism.

    Parameters
    ----------
    case_study:
        Enterprise description (default: the paper's).
    policy:
        Patch policy (default: critical-only, base score > 8.0).
    executor:
        ``"serial"``, ``"thread"``, ``"process"`` or an :class:`Executor`
        instance.
    max_workers:
        Worker cap for the named pool executors; rejected alongside an
        :class:`Executor` instance (configure the instance directly).
    chunk_size:
        Designs per executor task; defaults to an even split over
        ``4 * workers`` tasks (at least one design per task).
    database:
        Vulnerability database for variant lookups of heterogeneous
        designs (default: the case study's own database).
    cache_path:
        Optional sqlite file for a
        :class:`~repro.evaluation.cache.PersistentEvaluationCache`
        behind the in-memory memo: evaluations (and timelines) found on
        disk skip computation entirely, and fresh results are written
        back, so repeated CLI sweeps across sessions only pay for new
        designs.  Entries are keyed by ``DesignSpec.cache_key()`` plus a
        fingerprint of the case study / policy / database, so a cache
        file can never serve results from a different context.

    Examples
    --------
    >>> engine = SweepEngine()
    >>> evaluations = engine.sweep(["dns", "web"], max_replicas=2)
    >>> [e.design.total_servers for e in evaluations]
    [2, 3, 3, 4]
    """

    def __init__(
        self,
        case_study: EnterpriseCaseStudy | None = None,
        policy: PatchPolicy | None = None,
        executor: str | Executor = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        database: VulnerabilityDatabase | None = None,
        cache_path=None,
    ) -> None:
        self.case_study = case_study if case_study is not None else paper_case_study()
        self.policy = policy if policy is not None else CriticalVulnerabilityPolicy()
        self.executor = _resolve_executor(executor, max_workers)
        if chunk_size is not None:
            check_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.database = database
        if cache_path is not None:
            from repro.evaluation.cache import PersistentEvaluationCache

            self.persistent_cache = PersistentEvaluationCache(cache_path)
        else:
            self.persistent_cache = None
        self._fingerprint: str | None = None
        self._cache: dict[DesignSpec, DesignEvaluation] = {}
        self._timelines: dict[tuple, Any] = {}
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    # -- sweeping -----------------------------------------------------------

    def evaluate(self, designs: Iterable[DesignSpec]) -> list[DesignEvaluation]:
        """Evaluate *designs* (any mix of spec kinds), in input order."""
        designs = list(designs)
        pending: list[DesignSpec] = []
        seen_pending: set[DesignSpec] = set()
        for design in designs:
            if design in self._cache:
                self._hits += 1
                continue
            if self.persistent_cache is not None:
                stored = self.persistent_cache.get(
                    "evaluation", self._disk_key(design)
                )
                if stored is not None:
                    self._cache[design] = stored
                    self._disk_hits += 1
                    continue
            if design not in seen_pending:
                self._misses += 1
                seen_pending.add(design)
                pending.append(design)
        if pending:
            batches = [
                (self.case_study, self.policy, self.database, chunk)
                for chunk in self._chunks(pending)
            ]
            for chunk_result in self.executor.run(_evaluate_chunk, batches):
                for evaluation in chunk_result:
                    self._cache[evaluation.design] = evaluation
                    if self.persistent_cache is not None:
                        self.persistent_cache.put(
                            "evaluation",
                            self._disk_key(evaluation.design),
                            evaluation,
                        )
        return [self._cache[design] for design in designs]

    def timeline(
        self,
        designs: Iterable[DesignSpec],
        times: Sequence[float],
        tolerance: float = 1e-10,
    ) -> list:
        """Patch timelines of *designs* over *times*, in input order.

        The transient companion of :meth:`evaluate`: same chunked
        dispatch (one shared evaluator pair per chunk), same
        deterministic ordering across executors, same two-level
        memoisation — in-memory per ``(design, time grid, tolerance)``
        and, when a ``cache_path`` is configured, persisted on disk.
        See :func:`repro.evaluation.timeline.evaluate_timeline`.
        """
        designs = list(designs)
        times_key = tuple(float(t) for t in times)
        pending: list[DesignSpec] = []
        seen_pending: set[DesignSpec] = set()
        for design in designs:
            key = (design, times_key, tolerance)
            if key in self._timelines:
                self._hits += 1
                continue
            if self.persistent_cache is not None:
                stored = self.persistent_cache.get(
                    "timeline", self._disk_key(design, times_key, tolerance)
                )
                if stored is not None:
                    self._timelines[key] = stored
                    self._disk_hits += 1
                    continue
            if design not in seen_pending:
                self._misses += 1
                seen_pending.add(design)
                pending.append(design)
        if pending:
            batches = [
                (
                    self.case_study,
                    self.policy,
                    self.database,
                    times_key,
                    tolerance,
                    chunk,
                )
                for chunk in self._chunks(pending)
            ]
            for chunk_result in self.executor.run(_timeline_chunk, batches):
                for result in chunk_result:
                    key = (result.design, times_key, tolerance)
                    self._timelines[key] = result
                    if self.persistent_cache is not None:
                        self.persistent_cache.put(
                            "timeline",
                            self._disk_key(result.design, times_key, tolerance),
                            result,
                        )
        return [
            self._timelines[(design, times_key, tolerance)] for design in designs
        ]

    def sweep(
        self,
        roles: Sequence[str],
        max_replicas: int,
        max_total: int | None = None,
    ) -> list[DesignEvaluation]:
        """Enumerate and evaluate every homogeneous design of the space."""
        from repro.evaluation.sweep import enumerate_designs

        return self.evaluate(enumerate_designs(roles, max_replicas, max_total))

    def sweep_variants(
        self,
        roles: Sequence[str],
        variants: dict[str, Sequence[ServerRole]],
        max_replicas: int,
        max_total: int | None = None,
    ) -> list[DesignEvaluation]:
        """Enumerate and evaluate the heterogeneous (diversity) space.

        *variants* maps each role to its candidate stacks; see
        :func:`repro.evaluation.sweep.enumerate_heterogeneous_designs`.
        """
        from repro.evaluation.sweep import enumerate_heterogeneous_designs

        return self.evaluate(
            enumerate_heterogeneous_designs(roles, variants, max_replicas, max_total)
        )

    def pareto(
        self,
        evaluations: Iterable[DesignEvaluation],
        after_patch: bool = True,
    ) -> list[DesignEvaluation]:
        """The (lower ASP, higher COA) Pareto front of *evaluations*."""
        from repro.evaluation.sweep import pareto_front

        return pareto_front(evaluations, after_patch=after_patch)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Ordered map of a picklable *fn* over *items* via the executor.

        The escape hatch for per-design measures beyond the standard
        snapshot (MTTC, survivability, cost): benchmarks and extensions
        fan out through the same executor without reimplementing
        chunking or ordering.
        """
        items = list(items)
        batches = [(fn, chunk) for chunk in self._chunks(items)]
        results: list[Any] = []
        for chunk_result in self.executor.run(_map_chunk, batches):
            results.extend(chunk_result)
        return results

    # -- cache bookkeeping ----------------------------------------------------

    def clear_cache(self) -> None:
        """Drop memoised results and counters (the disk cache survives)."""
        self._cache.clear()
        self._timelines.clear()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    @property
    def cache_info(self) -> dict[str, int]:
        """``{"hits", "misses", "size"}`` of the in-memory result cache
        (plus ``"disk_hits"`` when a persistent cache is configured)."""
        info = {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache) + len(self._timelines),
        }
        if self.persistent_cache is not None:
            info["disk_hits"] = self._disk_hits
        return info

    # -- internal -------------------------------------------------------------

    def _disk_key(self, design: DesignSpec, *parts) -> str:
        """Persistent-cache key: context fingerprint + design identity."""
        from repro.evaluation.cache import PersistentEvaluationCache, context_fingerprint

        if self._fingerprint is None:
            self._fingerprint = context_fingerprint(
                self.case_study, self.policy, self.database
            )
        return PersistentEvaluationCache.entry_key(
            self._fingerprint, design.cache_key(), *parts
        )

    def _chunks(self, items: Sequence[Any]) -> list[Sequence[Any]]:
        if not items:
            return []
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            workers = self.executor.max_workers
            if workers is None:
                # Serial executors gain nothing from splitting; one chunk
                # keeps a single shared evaluator pair across all designs.
                size = len(items)
            else:
                size = max(1, -(-len(items) // max(1, 4 * workers)))
        return [items[i : i + size] for i in range(0, len(items), size)]

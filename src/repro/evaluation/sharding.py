"""Shard coordinator: fan one design space out across service processes.

``repro shard`` (and :class:`ShardCoordinator` for embedding) splits an
enumerated design space across *N* running ``repro serve`` processes by
the stable ``design.cache_key()`` hash (:func:`repro.evaluation.api.
shard_of`), sends one ``/v1`` request per shard — each carrying
``options.shard = {"index": I, "count": N}`` so the *service* filters
its partition from the same enumeration — and merges the partial
payloads back into the exact single-process payload:

* designs are re-interleaved in enumeration order (each shard returns
  its partition in that order, so the merge is a deterministic
  multi-way zip — no sorting, no float comparisons);
* the sweep ``pareto`` flags are recomputed over the merged set with
  :func:`repro.evaluation.api.pareto_flags` (a shard only sees its own
  partition, so its local front is too generous);
* everything else (roles, budgets, campaign metadata, key order) is
  identical across shards by construction.

The result is byte-identical to a single-process run over the same
space — asserted in tests and the CI shard smoke.

Failures fail over: shard *i*'s primary endpoint is ``endpoints[i %
N]``, and each retry rotates to the next endpoint, so a killed shard's
partition is re-requested from a surviving service.  When the services
share a sqlite cache (``repro serve --cache``), the survivor serves the
dead shard's finished designs from the shared result tier instead of
recomputing them.  The attempt loop passes the ``shard.request`` fault
point (see :mod:`repro.resilience.faults`), so chaos tests can kill a
request deterministically.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ThreadPoolExecutor

from repro import observability
from repro.errors import EvaluationError, FaultInjected, ValidationError
from repro.evaluation import api
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

__all__ = ["ShardCoordinator", "parse_endpoint"]

_logger = logging.getLogger(__name__)

_SHARD_REQUESTS = observability.counter(
    "repro_shard_requests_total",
    "Per-shard service requests issued by the coordinator, by outcome.",
)
_SHARD_FAILOVERS = observability.counter(
    "repro_shard_failovers_total",
    "Shard requests retried against another endpoint after a failure.",
).labels()


def parse_endpoint(text: str) -> tuple[str, int]:
    """``"host:port"`` (or bare ``"port"``) → ``(host, port)``."""
    spec = text.strip()
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", spec
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(
            f"invalid endpoint {text!r}; expected host:port"
        ) from None
    if not (0 < port < 65536):
        raise ValidationError(f"endpoint port out of range: {text!r}")
    return host or "127.0.0.1", port


class ShardCoordinator:
    """Fan sweep/timeline requests across *endpoints* and merge.

    Parameters
    ----------
    endpoints:
        ``host:port`` strings (or ``(host, port)`` pairs) of running
        ``repro serve`` processes; the shard count is ``len(endpoints)``.
    timeout:
        Per-request socket timeout of the underlying
        :class:`~repro.evaluation.service.ServiceClient`.
    retry:
        Failover policy: ``attempts`` bounds how many endpoints a
        failing shard request rotates through (with the policy's
        deterministic backoff between attempts).  Every shard request
        carries the caller's full ``deadline_ms`` budget — shards run
        concurrently, so budgets do not stack.
    """

    DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.2, max_delay=5.0)

    def __init__(
        self,
        endpoints,
        timeout: float = 300.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        from repro.evaluation.service import ServiceClient

        parsed = [
            endpoint
            if isinstance(endpoint, tuple)
            else parse_endpoint(endpoint)
            for endpoint in endpoints
        ]
        if not parsed:
            raise ValidationError("shard coordinator needs >= 1 endpoint")
        self.endpoints = parsed
        self.retry = retry or self.DEFAULT_RETRY
        self._clients = [
            ServiceClient(host, port, timeout=timeout) for host, port in parsed
        ]

    @property
    def shard_count(self) -> int:
        return len(self.endpoints)

    # -- public ----------------------------------------------------------

    def sweep(self, **fields) -> dict:
        """A sharded sweep, merged byte-identical to one process."""
        return self._fan_out(fields, timeline=False)

    def timeline(self, **fields) -> dict:
        """A sharded timeline, merged byte-identical to one process."""
        return self._fan_out(fields, timeline=True)

    # -- internals -------------------------------------------------------

    def _fan_out(self, fields: dict, timeline: bool) -> dict:
        space = api.SpaceSpec.from_payload(
            {
                name: fields[name]
                for name in ("roles", "max_replicas", "max_total", "variants", "scaled")
                if name in fields
            }
        )
        designs = api.enumerate_space(space)
        count = self.shard_count
        with ThreadPoolExecutor(
            max_workers=count, thread_name_prefix="repro-shard"
        ) as pool:
            futures = [
                pool.submit(self._shard_request, index, dict(fields), timeline)
                for index in range(count)
            ]
            responses = [future.result() for future in futures]
        return self._merge(designs, responses, timeline)

    def _shard_request(self, index: int, fields: dict, timeline: bool) -> dict:
        """One shard's partition, failing over across endpoints."""
        fields["shard"] = {"index": index, "count": self.shard_count}
        last_error: Exception | None = None
        for attempt in range(self.retry.attempts):
            endpoint = (index + attempt) % len(self._clients)
            client = self._clients[endpoint]
            if attempt:
                pause = self.retry.delay(attempt)
                if pause > 0.0:
                    time.sleep(pause)
                _SHARD_FAILOVERS.inc()
                _logger.warning(
                    "shard %d/%d: failing over to %s:%d (attempt %d/%d): %s",
                    index,
                    self.shard_count,
                    client.host,
                    client.port,
                    attempt + 1,
                    self.retry.attempts,
                    last_error,
                )
            try:
                fault_point("shard.request")
                response = (
                    client.timeline(**fields)
                    if timeline
                    else client.sweep(**fields)
                )
            except (EvaluationError, FaultInjected, OSError) as exc:
                last_error = exc
                _SHARD_REQUESTS.inc(outcome="error")
                continue
            _SHARD_REQUESTS.inc(outcome="ok")
            return response
        raise EvaluationError(
            f"shard {index}/{self.shard_count} failed on every endpoint "
            f"({self.retry.attempts} attempt(s)); last error: {last_error}"
        )

    @staticmethod
    def _merge(designs, responses: list[dict], timeline: bool) -> dict:
        """Re-interleave shard partitions into the single-process payload."""
        from collections import deque

        count = len(responses)
        queues = [deque(response["designs"]) for response in responses]
        merged = []
        for design in designs:
            queue = queues[api.shard_of(design, count)]
            if not queue:
                raise EvaluationError(
                    f"shard merge underflow at design {design.label!r}: a "
                    "shard returned fewer designs than its partition — "
                    "endpoint/space mismatch?"
                )
            merged.append(dict(queue.popleft()))
        leftovers = sum(len(queue) for queue in queues)
        if leftovers:
            raise EvaluationError(
                f"shard merge overflow: {leftovers} design payload(s) "
                "unclaimed after the merge — endpoint/space mismatch?"
            )
        payload = dict(responses[0])
        if not timeline:
            # A shard's local Pareto front is too generous (it never saw
            # the other partitions); recompute over the merged set.  The
            # flag is mutated in place, so key order — and therefore the
            # serialised bytes — match the single-process payload.
            for record, flag in zip(merged, api.pareto_flags(merged)):
                record["pareto"] = flag
        payload["designs"] = merged
        payload["design_count"] = len(merged)
        return payload

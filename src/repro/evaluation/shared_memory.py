"""Shared-memory transport of precomputed sweep state to pool workers.

The ``"process"`` sweep executor historically re-pickled the case study
with every chunk and let every worker re-solve the per-role lower-layer
SRNs (the Table V aggregates) from scratch.  This module implements the
precompute-and-share half of the structure-sharing pipeline:

- the **parent** solves the lower-layer aggregates and explores one
  canonical COA structure per transition pattern (see
  :mod:`repro.availability.grouped`), packs every numeric array into one
  ``multiprocessing.shared_memory`` segment, and hands workers a small
  handle;
- each **pool worker** attaches the segment once (pool initializer),
  copies the arrays out, reconstructs the aggregate table and the
  canonical structures, and primes its evaluator pair — chunks then
  carry only the designs, and no worker ever re-solves the lower layer
  or re-explores a pattern the parent already explored.

Aggregates and structures cross the boundary as bit-exact float64
arrays, so worker results are byte-identical to the in-process path.
Workers copy-and-close during initialization, so segment lifetime never
depends on worker health.  Per-call pools unlink the segment in a
``finally`` block as soon as the pool drains; a *persistent* (warm)
pool instead retains its context for the pool's lifetime — so
late-spawned or recycled workers can still attach and re-prime — and
unlinks it (idempotently) when the engine closes or the context is
superseded by one covering more designs (see
:meth:`SharedSweepContext.covers`).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro import observability
from repro.availability.aggregation import ServiceAggregate
from repro.availability.grouped import CanonicalLayout, CoaStructure
from repro.availability.measures import ServerMeasures
from repro.errors import EvaluationError, ReproError
from repro.observability import tracing
from repro.resilience.faults import fault_point

__all__ = [
    "pack_arrays",
    "read_arrays",
    "SharedSweepContext",
    "initialize_worker",
    "shared_evaluate_chunk",
    "shared_timeline_chunk",
]

_logger = logging.getLogger(__name__)

_SEGMENTS_BUILT = observability.counter(
    "repro_shared_segments_built_total",
    "Shared-memory sweep contexts built by the parent process.",
).labels()
_SEGMENT_BYTES = observability.gauge(
    "repro_shared_segment_bytes",
    "Size of the most recently built shared-memory segment.",
).labels()

#: Field order of one aggregate-table row (all float64).
_AGGREGATE_FIELDS = (
    "patch_rate",
    "recovery_rate",
    "service_up",
    "patch_down",
    "patch_ready_to_reboot",
    "service_failed",
    "hardware_down",
    "os_not_up",
)


# -- generic array packing ----------------------------------------------------


def pack_arrays(
    arrays: dict[str, np.ndarray],
) -> tuple[shared_memory.SharedMemory, dict[str, tuple[str, tuple[int, ...], int]]]:
    """Copy *arrays* into one fresh shared-memory segment.

    Returns the segment and an index ``{name: (dtype, shape, offset)}``
    that :func:`read_arrays` uses to rebuild the arrays from the raw
    buffer.  The caller owns the segment (close + unlink).
    """
    index: dict[str, tuple[str, tuple[int, ...], int]] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        index[name] = (array.dtype.str, array.shape, offset)
        offset += array.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        dtype, shape, start = index[name]
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=start)
        view[...] = array
    return segment, index


def read_arrays(
    segment: shared_memory.SharedMemory,
    index: dict[str, tuple[str, tuple[int, ...], int]],
) -> dict[str, np.ndarray]:
    """Copy every indexed array out of *segment* into private memory."""
    out: dict[str, np.ndarray] = {}
    for name, (dtype, shape, offset) in index.items():
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=offset)
        out[name] = np.array(view, copy=True)
    return out


# -- parent side --------------------------------------------------------------


def _aggregate_row(aggregate: ServiceAggregate) -> list[float]:
    measures = aggregate.measures
    return [
        aggregate.patch_rate,
        aggregate.recovery_rate,
        measures.service_up,
        measures.patch_down,
        measures.patch_ready_to_reboot,
        measures.service_failed,
        measures.hardware_down,
        measures.os_not_up,
    ]


def _rebuild_aggregate(name: str, row: np.ndarray) -> ServiceAggregate:
    values = dict(zip(_AGGREGATE_FIELDS, (float(v) for v in row)))
    return ServiceAggregate(
        name=name,
        patch_rate=values["patch_rate"],
        recovery_rate=values["recovery_rate"],
        measures=ServerMeasures(
            service_up=values["service_up"],
            patch_down=values["patch_down"],
            patch_ready_to_reboot=values["patch_ready_to_reboot"],
            service_failed=values["service_failed"],
            hardware_down=values["hardware_down"],
            os_not_up=values["os_not_up"],
        ),
    )


@dataclass
class SharedSweepContext:
    """Parent-side owner of one sweep's shared-memory segment.

    ``worker_payload()`` is what the pool initializer receives: the
    evaluation context (case study / policy / database — pickled once
    per worker, not once per chunk), the segment name, the array index
    and the aggregate/structure metadata needed to rebuild value
    objects around the shared numbers.
    """

    segment: shared_memory.SharedMemory
    payload: dict

    @classmethod
    def build(cls, case_study, policy, database, designs, evaluator=None):
        """Precompute aggregates + structures for *designs* and publish.

        *evaluator* optionally supplies an
        :class:`~repro.evaluation.availability.AvailabilityEvaluator`
        whose caches persist across sweeps (the engine passes its own),
        so repeated calls only solve what they have not seen before.
        """
        with tracing.span(
            "shared:build_context", designs=len(designs)
        ) as build_span:
            return cls._build(
                case_study, policy, database, designs, evaluator, build_span
            )

    @classmethod
    def _build(
        cls, case_study, policy, database, designs, evaluator, build_span
    ):
        from repro.evaluation.availability import AvailabilityEvaluator

        if evaluator is None:
            evaluator = AvailabilityEvaluator(
                case_study, policy, database=database
            )

        role_names: list[str] = []
        variant_keys: list[tuple[str, object]] = []
        role_rows: list[list[float]] = []
        variant_rows: list[list[float]] = []
        layouts: list[CanonicalLayout] = []
        structures: list[CoaStructure] = []
        seen_roles: set[str] = set()
        seen_variants: set[tuple[str, str]] = set()
        seen_layouts: set[tuple] = set()
        for design in designs:
            try:
                cls._precompute_design(
                    design,
                    evaluator,
                    role_names,
                    variant_keys,
                    role_rows,
                    variant_rows,
                    layouts,
                    structures,
                    seen_roles,
                    seen_variants,
                    seen_layouts,
                )
            except ReproError as exc:
                raise EvaluationError(
                    f"precomputing shared state for design {design.label!r} "
                    f"failed: {type(exc).__name__}: {exc}"
                ) from None
            except Exception as exc:
                import traceback

                raise EvaluationError(
                    f"precomputing shared state for design {design.label!r} "
                    f"failed: {type(exc).__name__}: {exc}\n"
                    f"{traceback.format_exc()}"
                ) from None

        # Role rows first, then variant rows — the exact layout
        # initialize_worker reads back (role_names index the first block,
        # variant_keys the second), regardless of which design kind was
        # encountered first.
        rows = role_rows + variant_rows
        arrays: dict[str, np.ndarray] = {
            "aggregates": np.array(rows, dtype=float).reshape(
                len(rows), len(_AGGREGATE_FIELDS)
            )
        }
        for position, structure in enumerate(structures):
            for name, array in structure.to_arrays().items():
                arrays[f"structure{position}:{name}"] = array

        segment, index = pack_arrays(arrays)
        _SEGMENTS_BUILT.inc()
        _SEGMENT_BYTES.set(segment.size)
        _logger.debug(
            "built shared context %s: %d roles, %d variants, "
            "%d structures, %d bytes",
            segment.name,
            len(role_names),
            len(variant_keys),
            len(structures),
            segment.size,
        )
        build_span.add(
            roles=len(role_names),
            variants=len(variant_keys),
            structures=len(structures),
            bytes=segment.size,
        )
        payload = {
            "case_study": case_study,
            "policy": policy,
            "database": database,
            "segment": segment.name,
            "index": index,
            "role_names": tuple(role_names),
            "variant_keys": tuple(variant_keys),
            "layouts": tuple(layouts),
        }
        return cls(segment=segment, payload=payload)

    @staticmethod
    def _precompute_design(
        design,
        evaluator,
        role_names,
        variant_keys,
        role_rows,
        variant_rows,
        layouts,
        structures,
        seen_roles,
        seen_variants,
        seen_layouts,
    ) -> None:
        """Fold one design's aggregates + structure into the tables.

        ``role_rows[i]`` always belongs to ``role_names[i]`` and
        ``variant_rows[j]`` to ``variant_keys[j]``; the two blocks are
        concatenated roles-first at pack time.
        """
        layout, slots = evaluator.design_slots(design)
        for slot in slots:
            if slot.variant is None:
                if slot.role not in seen_roles:
                    seen_roles.add(slot.role)
                    role_names.append(slot.role)
                    role_rows.append(
                        _aggregate_row(evaluator.aggregate(slot.role))
                    )
            else:
                key = (slot.role, slot.variant.name)
                if key not in seen_variants:
                    seen_variants.add(key)
                    variant_keys.append((slot.role, slot.variant))
                    variant_rows.append(
                        _aggregate_row(
                            evaluator.variant_aggregate(slot.variant, slot.role)
                        )
                    )
        if layout.tiers not in seen_layouts:
            seen_layouts.add(layout.tiers)
            structure, _ = evaluator.coa_structure_for(design)
            layouts.append(layout)
            structures.append(structure)

    def worker_payload(self) -> dict:
        """The pool-initializer argument (small, pickled once/worker)."""
        return self.payload

    def covers(self, designs) -> bool:
        """Whether the published tables serve every design in *designs*.

        True when each design's transition pattern is among the packed
        canonical structures and every role/variant slot has a row in
        the aggregate table — the warm-pool engine's cheap test (pure
        layout computation, no solving) for reusing this context across
        repeated sweeps instead of rebuilding segment and pool.
        """
        from repro.availability.grouped import design_layout

        roles = set(self.payload["role_names"])
        variants = {
            (role, variant.name)
            for role, variant in self.payload["variant_keys"]
        }
        tiers = {layout.tiers for layout in self.payload["layouts"]}
        for design in designs:
            layout, slots = design_layout(design)
            if layout.tiers not in tiers:
                return False
            for slot in slots:
                if slot.variant is None:
                    if slot.role not in roles:
                        return False
                elif (slot.role, slot.variant.name) not in variants:
                    return False
        return True

    @property
    def segment_name(self) -> str:
        """The shared-memory segment's name (for leak diagnostics)."""
        return self.segment.name

    def describe(self) -> dict | None:
        """Telemetry for ``/healthz`` lanes (None once unlinked)."""
        if self.segment is None:
            return None
        return {
            "segment": self.segment.name,
            "bytes": self.segment.size,
            "roles": len(self.payload["role_names"]),
            "variants": len(self.payload["variant_keys"]),
            "layouts": len(self.payload["layouts"]),
        }

    def unlink(self) -> None:
        """Release the segment (idempotent; called in ``finally``)."""
        if self.segment is None:
            return
        try:
            self.segment.close()
            self.segment.unlink()
        except FileNotFoundError:  # already unlinked
            pass
        self.segment = None


# -- worker side --------------------------------------------------------------

#: Per-process evaluator pair primed from the shared segment.
_WORKER: dict | None = None


def initialize_worker(payload: dict) -> None:
    """Pool initializer: attach the segment and prime the evaluators.

    Arrays are copied out and the segment closed immediately, so the
    parent's ``unlink`` never races worker lifetime.  The attachment is
    unregistered from the resource tracker because the parent owns the
    segment — without this, the tracker would try to clean it up a
    second time at interpreter shutdown (bpo-39959) and log spurious
    leak warnings.
    """
    global _WORKER
    fault_point("shared.attach", worker_only=True)
    segment = shared_memory.SharedMemory(name=payload["segment"])
    # Fork-pool workers share the parent's resource tracker, whose cache
    # is a set: the attach's re-registration is idempotent and the
    # parent's unlink() unregisters the name exactly once.  Workers must
    # therefore neither unlink nor unregister here (a second unregister
    # would KeyError inside the tracker process, bpo-39959).
    try:
        arrays = read_arrays(segment, payload["index"])
    finally:
        segment.close()

    table = arrays["aggregates"]
    roles: dict[str, ServiceAggregate] = {}
    variants: dict[tuple[str, object], ServiceAggregate] = {}
    for position, role in enumerate(payload["role_names"]):
        roles[role] = _rebuild_aggregate(role, table[position])
    offset = len(payload["role_names"])
    for position, (role, variant) in enumerate(payload["variant_keys"]):
        variants[(role or "", variant)] = _rebuild_aggregate(
            variant.name, table[offset + position]
        )

    structures: dict[tuple, CoaStructure] = {}
    for position, layout in enumerate(payload["layouts"]):
        prefix = f"structure{position}:"
        structures[layout.tiers] = CoaStructure.from_arrays(
            layout,
            {
                name[len(prefix):]: array
                for name, array in arrays.items()
                if name.startswith(prefix)
            },
        )

    from repro.evaluation.availability import AvailabilityEvaluator
    from repro.evaluation.security import SecurityEvaluator

    case_study = payload["case_study"]
    database = payload["database"]
    availability = AvailabilityEvaluator(
        case_study, payload["policy"], database=database
    )
    availability.prime_aggregates(roles=roles, variants=variants)
    availability.prime_structures(structures)
    _logger.debug(
        "worker primed from segment %s: %d roles, %d variants, "
        "%d structures",
        payload["segment"],
        len(roles),
        len(variants),
        len(structures),
    )
    _WORKER = {
        "security": SecurityEvaluator(case_study, database=database),
        "availability": availability,
        "case_study": case_study,
        "policy": payload["policy"],
    }


def _worker_state() -> dict:
    if _WORKER is None:
        raise EvaluationError(
            "shared-memory worker used before initialization; the pool "
            "initializer did not run"
        )
    return _WORKER


def shared_evaluate_chunk(designs, telemetry=None):
    """Worker entry point: evaluate one chunk with the primed evaluators."""
    fault_point("worker.chunk", worker_only=True)
    return observability.capture(
        telemetry, lambda: _shared_evaluate(designs)
    )


def _shared_evaluate(designs):
    from repro.evaluation.combined import evaluate_designs_shared

    state = _worker_state()
    with tracing.span("chunk:evaluate", designs=len(designs)):
        return evaluate_designs_shared(
            designs,
            state["case_study"],
            state["policy"],
            security_evaluator=state["security"],
            availability_evaluator=state["availability"],
        )


def shared_timeline_chunk(
    times, tolerance, designs, campaign=None, method="uniformisation",
    telemetry=None,
):
    """Worker entry point: patch timelines with the primed evaluators."""
    fault_point("worker.chunk", worker_only=True)
    return observability.capture(
        telemetry,
        lambda: _shared_timeline(times, tolerance, designs, campaign, method),
    )


def _shared_timeline(times, tolerance, designs, campaign, method):
    from repro.evaluation.timeline import evaluate_timelines_shared

    state = _worker_state()
    with tracing.span(
        "chunk:timeline", designs=len(designs), points=len(times)
    ):
        return evaluate_timelines_shared(
            designs,
            times,
            state["case_study"],
            state["policy"],
            tolerance=tolerance,
            security_evaluator=state["security"],
            availability_evaluator=state["availability"],
            campaign=campaign,
            method=method,
        )

"""Operational-cost extension (Section V, "other metrics").

The paper sketches adding economic measures to the trade-off: the gain
of high availability versus the cost of redundancy, and the loss from
successful attacks versus the cost of patching.  This module provides a
simple, documented cost model over a design evaluation:

    cost = servers * server_cost
         + (1 - COA) * downtime_cost_per_hour * hours
         + ASP_after * breach_loss
         + patched_vulnerabilities * patch_labour_cost
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._validation import check_non_negative
from repro.evaluation.combined import DesignEvaluation

__all__ = ["CostModel", "CostBreakdown"]

HOURS_PER_MONTH = 720.0


@dataclass(frozen=True)
class CostBreakdown:
    """Itemised monthly cost of one design."""

    servers: float
    downtime: float
    breach_risk: float
    patch_labour: float

    @property
    def total(self) -> float:
        """Sum of all items."""
        return self.servers + self.downtime + self.breach_risk + self.patch_labour


@dataclass(frozen=True)
class CostModel:
    """Monthly cost parameters (currency units are the caller's choice)."""

    server_cost_per_month: float = 500.0
    downtime_cost_per_hour: float = 10_000.0
    breach_loss: float = 250_000.0
    patch_labour_cost: float = 50.0

    def __post_init__(self) -> None:
        check_non_negative(self.server_cost_per_month, "server_cost_per_month")
        check_non_negative(self.downtime_cost_per_hour, "downtime_cost_per_hour")
        check_non_negative(self.breach_loss, "breach_loss")
        check_non_negative(self.patch_labour_cost, "patch_labour_cost")

    def breakdown(
        self, evaluation: DesignEvaluation, patched_vulnerabilities: int = 0
    ) -> CostBreakdown:
        """Itemised monthly cost of *evaluation*'s design."""
        design = evaluation.design
        coa = evaluation.after.coa
        asp = evaluation.after.security.attack_success_probability
        return CostBreakdown(
            servers=design.total_servers * self.server_cost_per_month,
            downtime=(1.0 - coa) * self.downtime_cost_per_hour * HOURS_PER_MONTH,
            breach_risk=asp * self.breach_loss,
            patch_labour=patched_vulnerabilities * self.patch_labour_cost,
        )

    def total(
        self, evaluation: DesignEvaluation, patched_vulnerabilities: int = 0
    ) -> float:
        """Total monthly cost of *evaluation*'s design."""
        return self.breakdown(evaluation, patched_vulnerabilities).total

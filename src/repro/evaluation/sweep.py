"""Design-space exploration beyond the paper's five choices."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from itertools import product

from repro._validation import check_positive_int
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import RedundancyDesign
from repro.evaluation.combined import DesignEvaluation, evaluate_designs
from repro.patching.policy import PatchPolicy

__all__ = ["enumerate_designs", "sweep_designs", "pareto_front"]


def enumerate_designs(
    roles: Sequence[str],
    max_replicas: int,
    max_total: int | None = None,
) -> Iterator[RedundancyDesign]:
    """Yield every design with 1..max_replicas servers per role.

    *max_total* optionally caps the total server count (budget limit).
    Designs are yielded in lexicographic count order.
    """
    check_positive_int(max_replicas, "max_replicas")
    if not roles:
        return
    for counts in product(range(1, max_replicas + 1), repeat=len(roles)):
        if max_total is not None and sum(counts) > max_total:
            continue
        yield RedundancyDesign(dict(zip(roles, counts)))


def sweep_designs(
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    designs: Iterable[RedundancyDesign],
    executor: str | None = None,
    max_workers: int | None = None,
) -> list[DesignEvaluation]:
    """Evaluate an arbitrary design collection with shared caches.

    *executor*/*max_workers* select a :mod:`repro.evaluation.engine`
    executor for large spaces; the default stays serial and in-process.
    """
    return evaluate_designs(
        list(designs),
        case_study=case_study,
        policy=policy,
        executor=executor,
        max_workers=max_workers,
    )


def pareto_front(
    evaluations: Iterable[DesignEvaluation],
    after_patch: bool = True,
) -> list[DesignEvaluation]:
    """Designs not dominated on (lower ASP, higher COA).

    A design dominates another when it is at least as good on both axes
    and strictly better on one — the trade-off frontier an administrator
    chooses from.
    """
    pool = list(evaluations)

    def axes(evaluation: DesignEvaluation) -> tuple[float, float]:
        snapshot = evaluation.after if after_patch else evaluation.before
        return (snapshot.security.attack_success_probability, snapshot.coa)

    front = []
    for candidate in pool:
        asp_c, coa_c = axes(candidate)
        dominated = False
        for other in pool:
            if other is candidate:
                continue
            asp_o, coa_o = axes(other)
            if (
                asp_o <= asp_c
                and coa_o >= coa_c
                and (asp_o < asp_c or coa_o > coa_c)
            ):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front

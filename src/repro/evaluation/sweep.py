"""Design-space exploration beyond the paper's five choices.

Enumeration covers both spec kinds — replica-count spaces
(:func:`enumerate_designs`) and diverse-stack variant assignments
(:func:`enumerate_heterogeneous_designs`) — and :func:`pareto_front`
ranks any mix of the two on the same (ASP, COA) axes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from itertools import product

import numpy as np

from repro._validation import check_positive_int
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import DesignSpec, RedundancyDesign
from repro.enterprise.heterogeneous import HeterogeneousDesign
from repro.enterprise.roles import ServerRole
from repro.errors import ValidationError
from repro.evaluation.combined import DesignEvaluation, evaluate_designs
from repro.patching.policy import PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = [
    "enumerate_designs",
    "enumerate_heterogeneous_designs",
    "sweep_designs",
    "pareto_front",
    "pareto_front_loop",
]


def enumerate_designs(
    roles: Sequence[str],
    max_replicas: int,
    max_total: int | None = None,
) -> Iterator[RedundancyDesign]:
    """Yield every design with 1..max_replicas servers per role.

    *max_total* optionally caps the total server count (budget limit).
    Designs are yielded in lexicographic count order.
    """
    check_positive_int(max_replicas, "max_replicas")
    if not roles:
        return
    for counts in product(range(1, max_replicas + 1), repeat=len(roles)):
        if max_total is not None and sum(counts) > max_total:
            continue
        yield RedundancyDesign(dict(zip(roles, counts)))


def _role_assignments(
    variants: Sequence[ServerRole], max_replicas: int
) -> list[dict[ServerRole, int]]:
    """Every way to deploy 1..max_replicas servers over the variants.

    Each variant gets 0..max_replicas replicas; at least one server must
    be deployed and the role total may not exceed *max_replicas* (the
    same per-role budget :func:`enumerate_designs` applies).  Variants
    with a zero count are dropped from the assignment.
    """
    assignments: list[dict[ServerRole, int]] = []
    for counts in product(range(max_replicas + 1), repeat=len(variants)):
        total = sum(counts)
        if not 1 <= total <= max_replicas:
            continue
        assignments.append(
            {
                variant: count
                for variant, count in zip(variants, counts)
                if count > 0
            }
        )
    return assignments


def enumerate_heterogeneous_designs(
    roles: Sequence[str],
    variants: Mapping[str, Sequence[ServerRole]],
    max_replicas: int,
    max_total: int | None = None,
) -> Iterator[HeterogeneousDesign]:
    """Yield every variant-count assignment of the diversity space.

    For each role in *roles*, every way to split 1..max_replicas
    replicas over the role's candidate stacks in *variants* is
    considered (a role with one candidate degenerates to the homogeneous
    1..max_replicas enumeration); the cross product over roles is the
    design space.  *max_total* optionally caps the total server count.

    Raises
    ------
    ValidationError
        If a role has no variant pool, or a pool is empty.
    """
    check_positive_int(max_replicas, "max_replicas")
    if not roles:
        return
    pools: list[list[dict[ServerRole, int]]] = []
    for role in roles:
        pool = list(variants.get(role, ()))
        if not pool:
            raise ValidationError(f"role {role!r} has no candidate variants")
        pools.append(_role_assignments(pool, max_replicas))
    for combo in product(*pools):
        total = sum(sum(assignment.values()) for assignment in combo)
        if max_total is not None and total > max_total:
            continue
        yield HeterogeneousDesign(dict(zip(roles, combo)))


def sweep_designs(
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    designs: Iterable[DesignSpec],
    executor: str | None = None,
    max_workers: int | None = None,
    database: VulnerabilityDatabase | None = None,
) -> list[DesignEvaluation]:
    """Evaluate an arbitrary design collection with shared caches.

    *designs* may mix homogeneous and heterogeneous specs.
    *executor*/*max_workers* select a :mod:`repro.evaluation.engine`
    executor for large spaces; the default stays serial and in-process.
    """
    return evaluate_designs(
        list(designs),
        case_study=case_study,
        policy=policy,
        executor=executor,
        max_workers=max_workers,
        database=database,
    )


def _pareto_axes(
    evaluations: Sequence[DesignEvaluation], after_patch: bool
) -> tuple[np.ndarray, np.ndarray]:
    snapshots = [
        evaluation.after if after_patch else evaluation.before
        for evaluation in evaluations
    ]
    asp = np.array(
        [snapshot.security.attack_success_probability for snapshot in snapshots]
    )
    coa = np.array([snapshot.coa for snapshot in snapshots])
    return asp, coa


def pareto_front(
    evaluations: Iterable[DesignEvaluation],
    after_patch: bool = True,
) -> list[DesignEvaluation]:
    """Designs not dominated on (lower ASP, higher COA).

    A design dominates another when it is at least as good on both axes
    and strictly better on one — the trade-off frontier an administrator
    chooses from.  Works on any mix of design kinds (the axes live on
    the snapshots, not the specs).

    The implementation is an O(n log n) vectorized sweep: sort by
    (ASP asc, COA desc), then a design survives iff its COA equals its
    ASP-group's maximum and that maximum strictly exceeds the best COA
    of every strictly-lower ASP group.  :func:`pareto_front_loop` keeps
    the quadratic reference semantics as the parity oracle.
    """
    pool = list(evaluations)
    if not pool:
        return []
    asp, coa = _pareto_axes(pool, after_patch)
    order = np.lexsort((-coa, asp))
    sorted_asp = asp[order]
    sorted_coa = coa[order]
    # COA desc within an ASP group puts the group maximum first.
    group_start = np.concatenate(([True], sorted_asp[1:] != sorted_asp[:-1]))
    group_ids = np.cumsum(group_start) - 1
    group_max = sorted_coa[group_start]
    # Best COA over all strictly-lower ASP groups (-inf for the first).
    best_before = np.concatenate(
        ([-np.inf], np.maximum.accumulate(group_max)[:-1])
    )
    survives = (sorted_coa == group_max[group_ids]) & (
        group_max[group_ids] > best_before[group_ids]
    )
    keep = np.zeros(len(pool), dtype=bool)
    keep[order] = survives
    return [evaluation for evaluation, kept in zip(pool, keep) if kept]


def pareto_front_loop(
    evaluations: Iterable[DesignEvaluation],
    after_patch: bool = True,
) -> list[DesignEvaluation]:
    """Reference all-pairs Pareto front (the :func:`pareto_front` oracle)."""
    pool = list(evaluations)

    def axes(evaluation: DesignEvaluation) -> tuple[float, float]:
        snapshot = evaluation.after if after_patch else evaluation.before
        return (snapshot.security.attack_success_probability, snapshot.coa)

    front = []
    for candidate in pool:
        asp_c, coa_c = axes(candidate)
        dominated = False
        for other in pool:
            if other is candidate:
                continue
            asp_o, coa_o = axes(other)
            if (
                asp_o <= asp_c
                and coa_o >= coa_c
                and (asp_o < asp_c or coa_o > coa_c)
            ):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front

"""One-at-a-time sensitivity analysis of the availability pipeline.

Scales one model parameter at a time (patch interval, per-stage patch
durations, reboot durations, failure rates) and reports the COA swing —
the tornado-chart data an administrator uses to see which lever actually
moves availability.

All perturbations of a scan share net *structure* — only rate values
change — so the whole tornado is solved through
:func:`repro.srn.solve_family`: the lower-layer server SRN of each role
and the upper-layer network SRN are each explored once, and every
perturbation re-evaluates rates on the stored tangible markings instead
of re-walking the reachability graph.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace

from repro.availability.aggregation import ServiceAggregate, aggregate_from_solution
from repro.availability.coa import coa_reward
from repro.availability.network import NetworkAvailabilityModel
from repro.availability.parameters import ServerParameters
from repro.availability.server import build_server_srn
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import RedundancyDesign
from repro.errors import EvaluationError
from repro.patching.policy import PatchPolicy
from repro.srn import solve_family

__all__ = ["SensitivityEntry", "coa_sensitivity", "PARAMETERS"]

Scaler = Callable[[ServerParameters, float], ServerParameters]


def _scale_interval(params: ServerParameters, factor: float) -> ServerParameters:
    return params.with_patch_interval(params.patch_interval_hours * factor)


def _scale_patch_durations(params: ServerParameters, factor: float) -> ServerParameters:
    # durations scale by factor <=> rates scale by 1/factor
    patch = replace(
        params.patch,
        service_patch=params.patch.service_patch / factor,
        os_patch=params.patch.os_patch / factor,
    )
    return replace(params, patch=patch)


def _scale_reboots(params: ServerParameters, factor: float) -> ServerParameters:
    patch = replace(
        params.patch,
        os_patch_reboot=params.patch.os_patch_reboot / factor,
        service_patch_reboot=params.patch.service_patch_reboot / factor,
    )
    return replace(params, patch=patch)


def _scale_software_failures(
    params: ServerParameters, factor: float
) -> ServerParameters:
    rates = replace(
        params.rates,
        os_failure=params.rates.os_failure * factor,
        service_failure=params.rates.service_failure * factor,
    )
    return replace(params, rates=rates)


def _scale_hardware_failures(
    params: ServerParameters, factor: float
) -> ServerParameters:
    rates = replace(
        params.rates, hardware_failure=params.rates.hardware_failure * factor
    )
    return replace(params, rates=rates)


#: Parameter name -> scaler, in reporting order.
PARAMETERS: dict[str, Scaler] = {
    "patch_interval": _scale_interval,
    "patch_durations": _scale_patch_durations,
    "reboot_durations": _scale_reboots,
    "software_failure_rate": _scale_software_failures,
    "hardware_failure_rate": _scale_hardware_failures,
}


@dataclass(frozen=True)
class SensitivityEntry:
    """COA under low/baseline/high scaling of one parameter."""

    parameter: str
    low_factor: float
    high_factor: float
    coa_low: float
    coa_baseline: float
    coa_high: float

    @property
    def swing(self) -> float:
        """Absolute COA range across the scan."""
        values = (self.coa_low, self.coa_baseline, self.coa_high)
        return max(values) - min(values)


def coa_sensitivity(
    case_study: EnterpriseCaseStudy,
    design: RedundancyDesign,
    policy: PatchPolicy,
    parameters: Sequence[str] | None = None,
    low: float = 0.5,
    high: float = 2.0,
) -> list[SensitivityEntry]:
    """Tornado data: COA under one-at-a-time parameter scalings.

    Every role's parameter is scaled together (e.g. all patch intervals
    double at once), matching how an administrator would turn the knob.
    """
    if low <= 0 or high <= 0:
        raise EvaluationError("scaling factors must be > 0")
    names = list(parameters) if parameters is not None else list(PARAMETERS)
    for name in names:
        if name not in PARAMETERS:
            raise EvaluationError(
                f"unknown parameter {name!r}; choose from {sorted(PARAMETERS)}"
            )

    # One scenario per solve: the baseline plus (parameter, factor) pairs.
    scenarios: list[tuple[Scaler | None, float]] = [(None, 1.0)]
    scenarios.extend(
        (PARAMETERS[name], factor) for name in names for factor in (low, high)
    )

    # Lower layer: each role's server SRNs differ only in rate values
    # across scenarios, so the whole scan is one family per role.
    base_params = {
        role: case_study.server_parameters(role, policy)
        for role in design.roles
    }
    scenario_params: list[dict[str, ServerParameters]] = [
        {
            role: params if scaler is None else scaler(params, factor)
            for role, params in base_params.items()
        }
        for scaler, factor in scenarios
    ]
    scenario_aggregates: list[dict[str, ServiceAggregate]] = [
        {} for _ in scenarios
    ]
    for role in design.roles:
        nets = [build_server_srn(params[role]) for params in scenario_params]
        for i, solution in enumerate(solve_family(nets)):
            scenario_aggregates[i][role] = aggregate_from_solution(
                scenario_params[i][role], solution
            )

    # Upper layer: one network SRN per scenario, identical structure —
    # explore once, re-rate per scenario, batch-solve the steady states.
    upper_nets = [
        NetworkAvailabilityModel(design.counts, aggregates).build_srn()
        for aggregates in scenario_aggregates
    ]
    reward = coa_reward(design.counts)
    coas = [
        solution.expected_reward(reward)
        for solution in solve_family(upper_nets)
    ]

    baseline = coas[0]
    entries = []
    for position, name in enumerate(names):
        entries.append(
            SensitivityEntry(
                parameter=name,
                low_factor=low,
                high_factor=high,
                coa_low=coas[1 + 2 * position],
                coa_baseline=baseline,
                coa_high=coas[2 + 2 * position],
            )
        )
    entries.sort(key=lambda entry: entry.swing, reverse=True)
    return entries

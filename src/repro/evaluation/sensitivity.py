"""One-at-a-time sensitivity analysis of the availability pipeline.

Scales one model parameter at a time (patch interval, per-stage patch
durations, reboot durations, failure rates) and reports the COA swing —
the tornado-chart data an administrator uses to see which lever actually
moves availability.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace

from repro.availability.aggregation import aggregate_service
from repro.availability.network import NetworkAvailabilityModel
from repro.availability.parameters import ServerParameters
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import RedundancyDesign
from repro.errors import EvaluationError
from repro.patching.policy import PatchPolicy

__all__ = ["SensitivityEntry", "coa_sensitivity", "PARAMETERS"]

Scaler = Callable[[ServerParameters, float], ServerParameters]


def _scale_interval(params: ServerParameters, factor: float) -> ServerParameters:
    return params.with_patch_interval(params.patch_interval_hours * factor)


def _scale_patch_durations(params: ServerParameters, factor: float) -> ServerParameters:
    # durations scale by factor <=> rates scale by 1/factor
    patch = replace(
        params.patch,
        service_patch=params.patch.service_patch / factor,
        os_patch=params.patch.os_patch / factor,
    )
    return replace(params, patch=patch)


def _scale_reboots(params: ServerParameters, factor: float) -> ServerParameters:
    patch = replace(
        params.patch,
        os_patch_reboot=params.patch.os_patch_reboot / factor,
        service_patch_reboot=params.patch.service_patch_reboot / factor,
    )
    return replace(params, patch=patch)


def _scale_software_failures(
    params: ServerParameters, factor: float
) -> ServerParameters:
    rates = replace(
        params.rates,
        os_failure=params.rates.os_failure * factor,
        service_failure=params.rates.service_failure * factor,
    )
    return replace(params, rates=rates)


def _scale_hardware_failures(
    params: ServerParameters, factor: float
) -> ServerParameters:
    rates = replace(
        params.rates, hardware_failure=params.rates.hardware_failure * factor
    )
    return replace(params, rates=rates)


#: Parameter name -> scaler, in reporting order.
PARAMETERS: dict[str, Scaler] = {
    "patch_interval": _scale_interval,
    "patch_durations": _scale_patch_durations,
    "reboot_durations": _scale_reboots,
    "software_failure_rate": _scale_software_failures,
    "hardware_failure_rate": _scale_hardware_failures,
}


@dataclass(frozen=True)
class SensitivityEntry:
    """COA under low/baseline/high scaling of one parameter."""

    parameter: str
    low_factor: float
    high_factor: float
    coa_low: float
    coa_baseline: float
    coa_high: float

    @property
    def swing(self) -> float:
        """Absolute COA range across the scan."""
        values = (self.coa_low, self.coa_baseline, self.coa_high)
        return max(values) - min(values)


def coa_sensitivity(
    case_study: EnterpriseCaseStudy,
    design: RedundancyDesign,
    policy: PatchPolicy,
    parameters: Sequence[str] | None = None,
    low: float = 0.5,
    high: float = 2.0,
) -> list[SensitivityEntry]:
    """Tornado data: COA under one-at-a-time parameter scalings.

    Every role's parameter is scaled together (e.g. all patch intervals
    double at once), matching how an administrator would turn the knob.
    """
    if low <= 0 or high <= 0:
        raise EvaluationError("scaling factors must be > 0")
    names = list(parameters) if parameters is not None else list(PARAMETERS)
    for name in names:
        if name not in PARAMETERS:
            raise EvaluationError(
                f"unknown parameter {name!r}; choose from {sorted(PARAMETERS)}"
            )

    def coa_with(scaler: Scaler | None, factor: float) -> float:
        aggregates = {}
        for role in design.roles:
            params = case_study.server_parameters(role, policy)
            if scaler is not None:
                params = scaler(params, factor)
            aggregates[role] = aggregate_service(params)
        model = NetworkAvailabilityModel(design.counts, aggregates)
        return model.capacity_oriented_availability()

    baseline = coa_with(None, 1.0)
    entries = []
    for name in names:
        scaler = PARAMETERS[name]
        entries.append(
            SensitivityEntry(
                parameter=name,
                low_factor=low,
                high_factor=high,
                coa_low=coa_with(scaler, low),
                coa_baseline=baseline,
                coa_high=coa_with(scaler, high),
            )
        )
    entries.sort(key=lambda entry: entry.swing, reverse=True)
    return entries

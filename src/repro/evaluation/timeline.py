"""Patch-timeline evaluation: transient curves over whole design spaces.

The paper scores each design by *steady-state* security/availability
snapshots before and after a patch cycle (Figs. 6-7).  The operational
question during a patch campaign is *transient*: between patch start
(t = 0, every server up and unpatched) and patch completion, how do
availability and the attack surface evolve, per design?  This module
generalises the paper's per-design snapshots into time-resolved curves
for any :class:`~repro.enterprise.design.DesignSpec`:

- **transient COA**: the expected Table VI reward at each time, from
  the all-up marking of the design's availability SRN, one batched
  uniformisation pass per design
  (:class:`~repro.ctmc.transient.BatchTransientSolver`);
- **patch-completion curve**: the design's patch-completion CTMC (one
  state per vector of still-unpatched servers per role/variant, each
  group patching at its Table V ``lambda_eq``) is absorbing at
  all-patched; its transient analysis yields P(campaign complete by t)
  and the expected unpatched fraction, its mean time to absorption the
  **time to patch completion**;
- **security exposure curves**: each HARM metric interpolated between
  its before- and after-patch values by the expected unpatched
  fraction — the attack surface decays exactly as fast as the campaign
  retires unpatched servers.

:func:`evaluate_timelines` fans whole design spaces out through the
:class:`~repro.evaluation.engine.SweepEngine` executors with the same
chunked, deterministic, cache-friendly dispatch as the steady-state
sweep.

Staged rollouts
---------------
Every entry point accepts an optional
:class:`~repro.patching.campaign.PatchCampaign`: an ordered sequence of
rollout phases (canary -> ramp -> fleet), each scaling the patch rates
by a multiplier and ending on a fixed duration or a completion-fraction
trigger.  The curves are then computed by piecewise-constant
uniformisation (:func:`repro.ctmc.transient.transient_piecewise`) — one
batch pass per phase, the state vector carried across phase
boundaries — and the mean time to completion by per-phase occupancy
algebra plus a fundamental-matrix solve on the terminal phase.  A
single-phase multiplier-1 campaign reproduces the stationary curves bit
for bit.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.ctmc import Ctmc, mean_time_to_absorption
from repro.ctmc.transient import BatchTransientSolver, transient_piecewise
from repro.enterprise.casestudy import EnterpriseCaseStudy, paper_case_study
from repro.enterprise.design import DesignSpec
from repro.enterprise.heterogeneous import (
    HeterogeneousDesign,
    check_design_kind as _check_spec_kind,
)
from repro.errors import CtmcError, EvaluationError, ReproError, SolverError
from repro.evaluation.availability import AvailabilityEvaluator
from repro.evaluation.security import SecurityEvaluator
from repro.harm import SecurityMetrics
from repro.patching.campaign import PatchCampaign
from repro.patching.policy import CriticalVulnerabilityPolicy, PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = [
    "DesignTimeline",
    "default_time_grid",
    "evaluate_timeline",
    "evaluate_timelines",
    "evaluate_timelines_shared",
    "timeline_payload",
]

#: Safety bound on the patch-completion state space (product of
#: per-group counts + 1); generous for any realistic design sweep.
_MAX_COMPLETION_STATES = 200_000


def default_time_grid(horizon: float = 720.0, points: int = 24) -> tuple[float, ...]:
    """An evenly spaced grid ``0 .. horizon`` (hours), *points* samples.

    The default spans the paper's monthly (720 h) patch interval.
    """
    if horizon <= 0:
        raise EvaluationError(f"horizon must be > 0, got {horizon}")
    if points < 2:
        raise EvaluationError(f"points must be >= 2, got {points}")
    step = horizon / (points - 1)
    return tuple(i * step for i in range(points))


@dataclass(frozen=True)
class DesignTimeline:
    """Time-resolved patch-campaign behaviour of one design.

    All curves align with :attr:`times`.  Security metrics are exposed
    through :meth:`security_curve` (exposure-weighted interpolation
    between the before- and after-patch HARM snapshots).
    """

    design: DesignSpec
    times: tuple[float, ...]
    coa: tuple[float, ...]
    completion_probability: tuple[float, ...]
    unpatched_fraction: tuple[float, ...]
    mean_time_to_completion: float
    steady_coa: float
    before: SecurityMetrics
    after: SecurityMetrics
    #: The staged rollout the curves were computed under (``None`` for
    #: the stationary model).
    campaign: PatchCampaign | None = None
    #: Absolute start time (hours) of each campaign phase; ``math.inf``
    #: marks phases made unreachable by a never-ending predecessor.
    #: Empty for the stationary model.
    phase_starts: tuple[float, ...] = ()

    @property
    def label(self) -> str:
        """The design's paper-style label."""
        return self.design.label

    @property
    def min_coa(self) -> float:
        """The worst expected COA over the sampled campaign window."""
        return min(self.coa)

    def security_curve(self, metric: str) -> tuple[float, ...]:
        """*metric* over time: after-patch value plus the residual
        exposure, ``after + (before - after) * unpatched_fraction(t)``.

        Raises
        ------
        EvaluationError
            If the metric abbreviation is unknown.
        """
        before = self.before.as_dict()
        if metric not in before:
            raise EvaluationError(
                f"unknown security metric {metric!r}; "
                f"choose from {sorted(before)}"
            )
        hi = float(before[metric])
        lo = float(self.after.as_dict()[metric])
        return tuple(
            lo + (hi - lo) * fraction for fraction in self.unpatched_fraction
        )

    def security_curves(self) -> dict[str, tuple[float, ...]]:
        """Every HARM metric's exposure curve, keyed by abbreviation."""
        return {name: self.security_curve(name) for name in self.before.as_dict()}


def timeline_payload(timeline: DesignTimeline) -> dict:
    """The canonical JSON-ready dict of one design timeline.

    Shared by the ``repro timeline`` CLI and the evaluation service
    (``repro serve``), so their JSON outputs agree by construction.
    JSON has no ``inf``: an infinite mean time to completion serialises
    as ``None``, and unreachable campaign phases get ``None`` starts.
    """
    mttc = timeline.mean_time_to_completion
    payload = {
        "label": timeline.label,
        "counts": timeline.design.counts,
        "total_servers": timeline.design.total_servers,
        "mean_time_to_completion": mttc if math.isfinite(mttc) else None,
        "steady_coa": timeline.steady_coa,
        "min_coa": timeline.min_coa,
        "coa": list(timeline.coa),
        "completion_probability": list(timeline.completion_probability),
        "unpatched_fraction": list(timeline.unpatched_fraction),
        "security": {
            name: list(curve)
            for name, curve in timeline.security_curves().items()
        },
    }
    if timeline.campaign is not None:
        payload["phase_starts"] = [
            start if math.isfinite(start) else None
            for start in timeline.phase_starts
        ]
    if isinstance(timeline.design, HeterogeneousDesign):
        payload["variants"] = timeline.design.tiers()
    return payload


# -- patch-completion chain ---------------------------------------------------


def _patch_groups(
    availability_evaluator: AvailabilityEvaluator, design: DesignSpec
) -> list[tuple[str, int, float]]:
    """``(group name, replica count, lambda_eq)`` per role or variant."""
    if isinstance(design, HeterogeneousDesign):
        return [
            (
                variant.name,
                count,
                availability_evaluator.variant_aggregate(variant, role).patch_rate,
            )
            for role in design.roles
            for variant, count in design.variants(role).items()
        ]
    _check_spec_kind(design)
    return [
        (role, count, availability_evaluator.aggregate(role).patch_rate)
        for role, count in design.counts.items()
    ]


def _completion_chain(
    groups: Sequence[tuple[str, int, float]],
) -> tuple[Ctmc, tuple[int, ...], tuple[int, ...]]:
    """The absorbing patch-completion CTMC of a design.

    States are vectors of still-unpatched replica counts per group; each
    unpatched server of group *g* is patched independently at that
    group's aggregated rate, so state ``u`` moves to ``u - e_g`` at rate
    ``u_g * lambda_g``.  The all-zero state (campaign complete) is
    absorbing.  Returns the chain, the all-unpatched start state and the
    absorbing state.
    """
    counts = [count for _, count, _ in groups]
    states_total = math.prod(count + 1 for count in counts)
    if states_total > _MAX_COMPLETION_STATES:
        raise EvaluationError(
            f"patch-completion chain would have {states_total} states "
            f"(cap {_MAX_COMPLETION_STATES}); the design is too large"
        )
    states = [
        tuple(state)
        for state in itertools.product(*(range(count, -1, -1) for count in counts))
    ]
    chain = Ctmc(states)
    for state in states:
        for g, (_, _, rate) in enumerate(groups):
            if state[g] > 0 and rate > 0.0:
                successor = state[:g] + (state[g] - 1,) + state[g + 1 :]
                chain.add_rate(state, successor, state[g] * rate)
    full = tuple(counts)
    zero = tuple(0 for _ in counts)
    return chain, full, zero


# -- staged campaigns ---------------------------------------------------------


class _CompletionSolvers:
    """Per-multiplier uniformised solvers over one completion chain.

    A phase at multiplier 1.0 reuses the chain's own generator (the
    stationary solver, bit for bit); any other multiplier scales the
    generator — every transition of the completion chain is a patch
    transition, so ``Q_m = m * Q``.
    """

    def __init__(
        self, chain: Ctmc, tolerance: float, method: str = "uniformisation"
    ) -> None:
        self._chain = chain
        self._tolerance = tolerance
        self._method = method
        self._generator = None
        self._solvers: dict[float, BatchTransientSolver] = {}

    def for_multiplier(self, multiplier: float) -> BatchTransientSolver:
        solver = self._solvers.get(multiplier)
        if solver is None:
            if multiplier == 1.0:
                solver = BatchTransientSolver(
                    self._chain,
                    tolerance=self._tolerance,
                    method=self._method,
                )
            else:
                if self._generator is None:
                    self._generator = (
                        self._chain.generator().tocsr().astype(float)
                    )
                solver = BatchTransientSolver.from_generator(
                    self._generator * multiplier,
                    states=self._chain.states,
                    tolerance=self._tolerance,
                    method=self._method,
                )
            self._solvers[multiplier] = solver
        return solver


#: Safety cap on the bracketing search for completion-fraction
#: triggers; reached only on pathological inputs (treated as "never
#: fires", like an analytically unreachable threshold).
_MAX_TRIGGER_DOUBLINGS = 208

#: Probes per batched round of the trigger search (each round is one
#: anchored uniformisation pass over the whole probe ladder).
_TRIGGER_PROBES = 16


def _trigger_time(
    solver: BatchTransientSolver,
    carry,
    unpatched_vector: np.ndarray,
    threshold: float,
    unreachable_fraction: float,
) -> float:
    """Hours until the expected unpatched fraction first drops to
    *threshold*, starting from *carry* under *solver*'s dynamics.

    Returns ``math.inf`` when the trigger never fires: frozen dynamics
    (a zero effective rate), a threshold of zero (reached only
    asymptotically), or a threshold at or below *unreachable_fraction*
    — the limiting fraction held forever by groups whose effective
    patch rate is zero.  Otherwise the decay is monotone, so the time
    is bracketed by a doubling ladder and refined by 17-section down to
    adjacent floats, both evaluated in *batched* solver calls — the
    batch solver serves a whole probe ladder from one anchored iterate
    stream, so each round costs about as much as its largest single
    probe.  Pure float arithmetic throughout: the result is
    deterministic across runs and executors.
    """

    def fractions(offsets: Sequence[float]) -> np.ndarray:
        return solver.distributions(carry, offsets) @ unpatched_vector

    if float(fractions([0.0])[0]) <= threshold:
        return 0.0
    if solver.lam == 0.0 or threshold <= unreachable_fraction:
        return math.inf
    # Bracket: ladders of doublings, one batched pass per ladder.
    hi = None
    lo = 0.0
    start = 1.0
    for _ in range(_MAX_TRIGGER_DOUBLINGS // _TRIGGER_PROBES):
        ladder = [start * 2.0**i for i in range(_TRIGGER_PROBES)]
        values = fractions(ladder)
        below = np.nonzero(values <= threshold)[0]
        if below.size:
            first = int(below[0])
            hi = ladder[first]
            if first > 0:
                lo = ladder[first - 1]
            break
        lo = ladder[-1]
        start = ladder[-1] * 2.0
    if hi is None:  # pragma: no cover - unreachable-threshold safety net
        return math.inf
    # Refine: 17-section, one batched pass per round, keeping the
    # invariant fraction(hi) <= threshold < fraction(lo).
    while True:
        step = (hi - lo) / (_TRIGGER_PROBES + 1)
        probes = [lo + i * step for i in range(1, _TRIGGER_PROBES + 1)]
        probes = [probe for probe in probes if lo < probe < hi]
        if not probes:
            return hi
        values = fractions(probes)
        new_lo, new_hi = lo, hi
        for probe, value in zip(probes, values):
            if value <= threshold:
                new_hi = probe
                break
            new_lo = probe
        if new_lo == lo and new_hi == hi:
            return hi
        lo, hi = new_lo, new_hi


def _resolve_campaign(
    campaign: PatchCampaign,
    multipliers: Sequence[float],
    groups: Sequence[tuple[str, int, float]],
    solvers: _CompletionSolvers,
    full,
    unpatched_vector: np.ndarray,
) -> tuple[list[float], tuple[float, ...]]:
    """Concrete phase durations and absolute phase start times.

    Fixed durations are taken as given; completion-fraction triggers
    are resolved against the design's patch-completion chain (the
    trigger is defined on the *expected* patched fraction of the
    fleet), walking the carried distribution phase by phase.  The final
    phase is open-ended (campaign validation guarantees it).  Phases
    behind a never-ending phase are unreachable and get a start of
    ``math.inf``.
    """
    total = sum(count for _, count, _ in groups)
    # The carried distribution is only consumed by completion-fraction
    # triggers; past the last trigger phase, propagation is dead work
    # (the curves recompute their own carries in one batch pass each).
    last_trigger = max(
        (
            position
            for position, phase in enumerate(campaign.phases)
            if phase.completion_fraction is not None
        ),
        default=-1,
    )
    durations: list[float] = []
    starts: list[float] = []
    carry = {full: 1.0}
    start = 0.0
    terminal = False
    for position, (phase, multiplier) in enumerate(
        zip(campaign.phases, multipliers)
    ):
        last = position == len(campaign.phases) - 1
        starts.append(math.inf if terminal else start)
        if terminal:
            durations.append(math.inf)
            continue
        if last:
            duration = math.inf
        elif phase.duration_hours is not None:
            duration = phase.duration_hours
        else:
            # The fraction cannot decay below the share of the fleet
            # whose effective patch rate is zero in this phase.
            unreachable = (
                sum(
                    count
                    for _, count, rate in groups
                    if rate * multiplier == 0.0
                )
                / total
            )
            duration = _trigger_time(
                solvers.for_multiplier(multiplier),
                carry,
                unpatched_vector,
                1.0 - phase.completion_fraction,
                unreachable,
            )
        durations.append(duration)
        if math.isinf(duration):
            terminal = True
        elif duration > 0.0:
            if position < last_trigger:
                carry = solvers.for_multiplier(multiplier).distributions(
                    carry, [duration]
                )[0]
            start += duration
    return durations, tuple(starts)


def _campaign_mean_completion(
    chain: Ctmc,
    multipliers: Sequence[float],
    durations: Sequence[float],
    carries: Sequence[np.ndarray],
) -> float:
    """Expected hours until every server is patched, under a campaign.

    ``E[T] = sum_p int_{phase p} P(not yet absorbed at t) dt``, with
    the same absorption semantics as the stationary path's
    ``mean_time_to_absorption(chain, start=full)`` (a design whose
    groups all patch absorbs only at completion).  For each finite
    phase the integral is exact occupancy algebra: integrating the
    forward equation over the phase gives
    ``(int pi_T dt) Q_TT = pi_T(end) - pi_T(start)``, one sparse solve
    per phase.  The terminal phase contributes the fundamental-matrix
    expectation ``sum_i pi_T(i) * MTTA_i`` under its scaled generator.
    Returns ``math.inf`` when absorption is not certain (frozen
    terminal dynamics with transient mass left, or a chain the MTTA
    solve rejects) — mirroring the stationary path's error handling.
    """
    from scipy.sparse import linalg as sparse_linalg

    states = chain.states
    absorbing = {chain.index_of(state) for state in chain.absorbing_states()}
    transient_idx = [i for i in range(len(states)) if i not in absorbing]
    if not transient_idx:
        # Every state absorbing (nothing ever patches): never completes.
        return math.inf
    q_tt = None
    mean = 0.0
    terminal = len(carries) - 1
    for position in range(terminal + 1):
        multiplier = multipliers[position]
        duration = durations[position]
        carry = carries[position]
        if position == terminal:
            if multiplier == 0.0:
                remaining = float(np.sum(carry[transient_idx]))
                return mean if remaining <= 1e-12 else math.inf
            try:
                # MTTA(m * Q) = MTTA(Q) / m: one solve on the base chain
                # covers every terminal multiplier (and / 1.0 keeps the
                # degenerate single-phase case bit-identical).
                table = mean_time_to_absorption(chain)
            except (SolverError, CtmcError):
                return math.inf
            for i, state in enumerate(states):
                weight = float(carry[i])
                if weight == 0.0:
                    continue
                tail = table.get(state)
                if tail is None:
                    continue  # already absorbed: contributes no time
                mean += weight * tail / multiplier
            return mean
        if duration == 0.0:
            continue
        if multiplier == 0.0:
            mean += duration * float(np.sum(carry[transient_idx]))
            continue
        if q_tt is None:
            q = chain.generator().tocsc().astype(float)
            q_tt = q[np.ix_(transient_idx, transient_idx)]
        rhs = (
            carries[position + 1][transient_idx] - carry[transient_idx]
        )
        try:
            occupancy = sparse_linalg.spsolve(
                (q_tt * multiplier).transpose().tocsc(), rhs
            )
        except Exception:
            return math.inf
        occupancy = np.atleast_1d(occupancy)
        if not np.all(np.isfinite(occupancy)):
            return math.inf
        mean += float(np.sum(occupancy))
    return mean  # pragma: no cover - loop always returns at terminal


# -- per-design evaluation ----------------------------------------------------


def evaluate_timeline(
    design: DesignSpec,
    times: Sequence[float],
    case_study: EnterpriseCaseStudy | None = None,
    policy: PatchPolicy | None = None,
    security_evaluator: SecurityEvaluator | None = None,
    availability_evaluator: AvailabilityEvaluator | None = None,
    database: VulnerabilityDatabase | None = None,
    tolerance: float = 1e-10,
    campaign: PatchCampaign | None = None,
    method: str = "uniformisation",
) -> DesignTimeline:
    """The patch-timeline curves of one design.

    *method* selects the transient propagation backend for both the
    COA curve and the completion-chain solves (see
    :class:`~repro.ctmc.transient.BatchTransientSolver`); the default
    keeps the exact bit-identical uniformisation path.

    With no arguments beyond *design* and *times*, uses the paper's case
    study and critical-vulnerability policy.  Pass shared evaluator
    instances when scoring many designs so the per-role / per-variant
    lower-layer aggregates are solved once (*database* supplies variant
    records for heterogeneous designs and is ignored when explicit
    evaluators are given).

    *campaign* optionally stages the rollout
    (:class:`~repro.patching.campaign.PatchCampaign`): each phase
    scales the patch rates, curves are computed by piecewise-constant
    uniformisation carrying the state vector across phase boundaries,
    and completion-fraction triggers are resolved against the design's
    own patch-completion chain.  A single-phase multiplier-1 campaign
    is bit-identical to ``campaign=None``.
    """
    times = tuple(float(t) for t in times)
    if not times:
        raise EvaluationError("a timeline needs at least one time point")
    if not all(math.isfinite(t) and t >= 0 for t in times):
        raise EvaluationError("times must be finite and non-negative")
    if campaign is not None and not isinstance(campaign, PatchCampaign):
        raise EvaluationError(
            f"campaign must be a PatchCampaign, got {type(campaign).__name__}"
        )
    if case_study is None:
        case_study = paper_case_study()
    if policy is None:
        policy = CriticalVulnerabilityPolicy()
    if security_evaluator is None:
        security_evaluator = SecurityEvaluator(case_study, database=database)
    if availability_evaluator is None:
        availability_evaluator = AvailabilityEvaluator(
            case_study, policy, database=database
        )

    steady_coa = availability_evaluator.coa(design)
    groups = _patch_groups(availability_evaluator, design)
    chain, full, zero = _completion_chain(groups)
    total = sum(count for _, count, _ in groups)
    zero_index = chain.index_of(zero)
    unpatched_vector = np.array(
        [sum(state) / total for state in chain.states]
    )

    if campaign is None:
        coa_curve = availability_evaluator.transient_coa(
            design, times, tolerance=tolerance, method=method
        )
        solver = BatchTransientSolver(chain, tolerance=tolerance, method=method)
        distributions = solver.distributions({full: 1.0}, times)
        try:
            mean_completion = float(mean_time_to_absorption(chain, start=full))
        except (SolverError, CtmcError):
            # A zero patch rate leaves part of the design unpatched
            # forever (the start state may itself be absorbing then).
            mean_completion = math.inf
        phase_starts: tuple[float, ...] = ()
    else:
        multipliers = [
            phase.effective_multiplier(total) for phase in campaign.phases
        ]
        solvers = _CompletionSolvers(chain, tolerance, method)
        durations, phase_starts = _resolve_campaign(
            campaign, multipliers, groups, solvers, full, unpatched_vector
        )
        # Segments behind a never-ending phase are unreachable; keep the
        # reachable prefix (transient_piecewise stops there anyway).
        reach = next(
            (
                position + 1
                for position, duration in enumerate(durations)
                if math.isinf(duration)
            ),
            len(durations),
        )
        multipliers, durations = multipliers[:reach], durations[:reach]
        coa_curve = availability_evaluator.transient_coa_piecewise(
            design, times, multipliers, durations,
            tolerance=tolerance, method=method,
        )
        segments = [
            (solvers.for_multiplier(multiplier), duration)
            for multiplier, duration in zip(multipliers, durations)
        ]
        distributions, carries = transient_piecewise(
            segments, {full: 1.0}, times, return_carries=True
        )
        mean_completion = _campaign_mean_completion(
            chain, multipliers, durations, carries
        )
    completion = distributions[:, zero_index]
    unpatched = distributions @ unpatched_vector

    return DesignTimeline(
        design=design,
        times=times,
        coa=tuple(float(v) for v in coa_curve),
        completion_probability=tuple(float(v) for v in completion),
        unpatched_fraction=tuple(float(v) for v in unpatched),
        mean_time_to_completion=mean_completion,
        steady_coa=float(steady_coa),
        before=security_evaluator.before_patch(design),
        after=security_evaluator.after_patch(design, policy),
        campaign=campaign,
        phase_starts=phase_starts,
    )


def evaluate_timelines_shared(
    designs: Iterable[DesignSpec],
    times: Sequence[float],
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    database: VulnerabilityDatabase | None = None,
    tolerance: float = 1e-10,
    structure_sharing: bool = True,
    security_evaluator: SecurityEvaluator | None = None,
    availability_evaluator: AvailabilityEvaluator | None = None,
    campaign: PatchCampaign | None = None,
    method: str = "uniformisation",
) -> list[DesignTimeline]:
    """Serial timelines of *designs* with one shared evaluator pair.

    The chunk primitive of :meth:`SweepEngine.timeline`: the shared
    :class:`AvailabilityEvaluator` amortises the per-role and
    per-variant lower-layer SRN solves — and, with *structure_sharing*
    on, the per-pattern canonical explorations — across every design in
    the chunk, whatever mix of spec kinds the chunk holds.  Pass
    evaluator instances (e.g. primed from shared memory) to reuse their
    caches.  Failures carry the design label and original traceback in
    a picklable :class:`~repro.errors.EvaluationError`.
    """
    import traceback

    if security_evaluator is None:
        security_evaluator = SecurityEvaluator(case_study, database=database)
    if availability_evaluator is None:
        availability_evaluator = AvailabilityEvaluator(
            case_study,
            policy,
            database=database,
            structure_sharing=structure_sharing,
        )
    results: list[DesignTimeline] = []
    for design in designs:
        try:
            results.append(
                evaluate_timeline(
                    design,
                    times,
                    case_study=case_study,
                    policy=policy,
                    security_evaluator=security_evaluator,
                    availability_evaluator=availability_evaluator,
                    tolerance=tolerance,
                    campaign=campaign,
                    method=method,
                )
            )
        except ReproError as exc:
            raise EvaluationError(
                f"timeline of design {design.label!r} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from None
        except Exception as exc:
            raise EvaluationError(
                f"timeline of design {design.label!r} failed: "
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            ) from None
    return results


def evaluate_timelines(
    designs: Iterable[DesignSpec],
    times: Sequence[float],
    case_study: EnterpriseCaseStudy | None = None,
    policy: PatchPolicy | None = None,
    executor: str | None = None,
    max_workers: int | None = None,
    database: VulnerabilityDatabase | None = None,
    tolerance: float = 1e-10,
    campaign: PatchCampaign | None = None,
    method: str = "uniformisation",
) -> list[DesignTimeline]:
    """Timelines of many designs, optionally fanned out in parallel.

    *executor* selects a sweep-engine executor (``"serial"``,
    ``"thread"`` or ``"process"``); the default runs in-process without
    engine overhead.  Results are in input order and byte-identical
    across executors.  *campaign* stages the rollout (shared by every
    design; completion-fraction triggers still resolve per design).
    """
    if case_study is None:
        case_study = paper_case_study()
    if policy is None:
        policy = CriticalVulnerabilityPolicy()
    if executor is not None and executor != "serial":
        from repro.evaluation.engine import SweepEngine

        engine = SweepEngine(
            case_study=case_study,
            policy=policy,
            executor=executor,
            max_workers=max_workers,
            database=database,
        )
        return engine.timeline(
            designs, times, tolerance=tolerance, campaign=campaign,
            method=method,
        )
    return evaluate_timelines_shared(
        designs,
        times,
        case_study,
        policy,
        database=database,
        tolerance=tolerance,
        campaign=campaign,
        method=method,
    )

"""Patch-timeline evaluation: transient curves over whole design spaces.

The paper scores each design by *steady-state* security/availability
snapshots before and after a patch cycle (Figs. 6-7).  The operational
question during a patch campaign is *transient*: between patch start
(t = 0, every server up and unpatched) and patch completion, how do
availability and the attack surface evolve, per design?  This module
generalises the paper's per-design snapshots into time-resolved curves
for any :class:`~repro.enterprise.design.DesignSpec`:

- **transient COA**: the expected Table VI reward at each time, from
  the all-up marking of the design's availability SRN, one batched
  uniformisation pass per design
  (:class:`~repro.ctmc.transient.BatchTransientSolver`);
- **patch-completion curve**: the design's patch-completion CTMC (one
  state per vector of still-unpatched servers per role/variant, each
  group patching at its Table V ``lambda_eq``) is absorbing at
  all-patched; its transient analysis yields P(campaign complete by t)
  and the expected unpatched fraction, its mean time to absorption the
  **time to patch completion**;
- **security exposure curves**: each HARM metric interpolated between
  its before- and after-patch values by the expected unpatched
  fraction — the attack surface decays exactly as fast as the campaign
  retires unpatched servers.

:func:`evaluate_timelines` fans whole design spaces out through the
:class:`~repro.evaluation.engine.SweepEngine` executors with the same
chunked, deterministic, cache-friendly dispatch as the steady-state
sweep.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.ctmc import Ctmc, mean_time_to_absorption
from repro.ctmc.transient import BatchTransientSolver
from repro.enterprise.casestudy import EnterpriseCaseStudy, paper_case_study
from repro.enterprise.design import DesignSpec
from repro.enterprise.heterogeneous import (
    HeterogeneousDesign,
    check_design_kind as _check_spec_kind,
)
from repro.errors import CtmcError, EvaluationError, ReproError, SolverError
from repro.evaluation.availability import AvailabilityEvaluator
from repro.evaluation.security import SecurityEvaluator
from repro.harm import SecurityMetrics
from repro.patching.policy import CriticalVulnerabilityPolicy, PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = [
    "DesignTimeline",
    "default_time_grid",
    "evaluate_timeline",
    "evaluate_timelines",
    "evaluate_timelines_shared",
]

#: Safety bound on the patch-completion state space (product of
#: per-group counts + 1); generous for any realistic design sweep.
_MAX_COMPLETION_STATES = 200_000


def default_time_grid(horizon: float = 720.0, points: int = 24) -> tuple[float, ...]:
    """An evenly spaced grid ``0 .. horizon`` (hours), *points* samples.

    The default spans the paper's monthly (720 h) patch interval.
    """
    if horizon <= 0:
        raise EvaluationError(f"horizon must be > 0, got {horizon}")
    if points < 2:
        raise EvaluationError(f"points must be >= 2, got {points}")
    step = horizon / (points - 1)
    return tuple(i * step for i in range(points))


@dataclass(frozen=True)
class DesignTimeline:
    """Time-resolved patch-campaign behaviour of one design.

    All curves align with :attr:`times`.  Security metrics are exposed
    through :meth:`security_curve` (exposure-weighted interpolation
    between the before- and after-patch HARM snapshots).
    """

    design: DesignSpec
    times: tuple[float, ...]
    coa: tuple[float, ...]
    completion_probability: tuple[float, ...]
    unpatched_fraction: tuple[float, ...]
    mean_time_to_completion: float
    steady_coa: float
    before: SecurityMetrics
    after: SecurityMetrics

    @property
    def label(self) -> str:
        """The design's paper-style label."""
        return self.design.label

    @property
    def min_coa(self) -> float:
        """The worst expected COA over the sampled campaign window."""
        return min(self.coa)

    def security_curve(self, metric: str) -> tuple[float, ...]:
        """*metric* over time: after-patch value plus the residual
        exposure, ``after + (before - after) * unpatched_fraction(t)``.

        Raises
        ------
        EvaluationError
            If the metric abbreviation is unknown.
        """
        before = self.before.as_dict()
        if metric not in before:
            raise EvaluationError(
                f"unknown security metric {metric!r}; "
                f"choose from {sorted(before)}"
            )
        hi = float(before[metric])
        lo = float(self.after.as_dict()[metric])
        return tuple(
            lo + (hi - lo) * fraction for fraction in self.unpatched_fraction
        )

    def security_curves(self) -> dict[str, tuple[float, ...]]:
        """Every HARM metric's exposure curve, keyed by abbreviation."""
        return {name: self.security_curve(name) for name in self.before.as_dict()}


# -- patch-completion chain ---------------------------------------------------


def _patch_groups(
    availability_evaluator: AvailabilityEvaluator, design: DesignSpec
) -> list[tuple[str, int, float]]:
    """``(group name, replica count, lambda_eq)`` per role or variant."""
    if isinstance(design, HeterogeneousDesign):
        return [
            (
                variant.name,
                count,
                availability_evaluator.variant_aggregate(variant, role).patch_rate,
            )
            for role in design.roles
            for variant, count in design.variants(role).items()
        ]
    _check_spec_kind(design)
    return [
        (role, count, availability_evaluator.aggregate(role).patch_rate)
        for role, count in design.counts.items()
    ]


def _completion_chain(
    groups: Sequence[tuple[str, int, float]],
) -> tuple[Ctmc, tuple[int, ...], tuple[int, ...]]:
    """The absorbing patch-completion CTMC of a design.

    States are vectors of still-unpatched replica counts per group; each
    unpatched server of group *g* is patched independently at that
    group's aggregated rate, so state ``u`` moves to ``u - e_g`` at rate
    ``u_g * lambda_g``.  The all-zero state (campaign complete) is
    absorbing.  Returns the chain, the all-unpatched start state and the
    absorbing state.
    """
    counts = [count for _, count, _ in groups]
    states_total = math.prod(count + 1 for count in counts)
    if states_total > _MAX_COMPLETION_STATES:
        raise EvaluationError(
            f"patch-completion chain would have {states_total} states "
            f"(cap {_MAX_COMPLETION_STATES}); the design is too large"
        )
    states = [
        tuple(state)
        for state in itertools.product(*(range(count, -1, -1) for count in counts))
    ]
    chain = Ctmc(states)
    for state in states:
        for g, (_, _, rate) in enumerate(groups):
            if state[g] > 0 and rate > 0.0:
                successor = state[:g] + (state[g] - 1,) + state[g + 1 :]
                chain.add_rate(state, successor, state[g] * rate)
    full = tuple(counts)
    zero = tuple(0 for _ in counts)
    return chain, full, zero


# -- per-design evaluation ----------------------------------------------------


def evaluate_timeline(
    design: DesignSpec,
    times: Sequence[float],
    case_study: EnterpriseCaseStudy | None = None,
    policy: PatchPolicy | None = None,
    security_evaluator: SecurityEvaluator | None = None,
    availability_evaluator: AvailabilityEvaluator | None = None,
    database: VulnerabilityDatabase | None = None,
    tolerance: float = 1e-10,
) -> DesignTimeline:
    """The patch-timeline curves of one design.

    With no arguments beyond *design* and *times*, uses the paper's case
    study and critical-vulnerability policy.  Pass shared evaluator
    instances when scoring many designs so the per-role / per-variant
    lower-layer aggregates are solved once (*database* supplies variant
    records for heterogeneous designs and is ignored when explicit
    evaluators are given).
    """
    times = tuple(float(t) for t in times)
    if not times:
        raise EvaluationError("a timeline needs at least one time point")
    if any(t < 0 for t in times):
        raise EvaluationError("times must be non-negative")
    if case_study is None:
        case_study = paper_case_study()
    if policy is None:
        policy = CriticalVulnerabilityPolicy()
    if security_evaluator is None:
        security_evaluator = SecurityEvaluator(case_study, database=database)
    if availability_evaluator is None:
        availability_evaluator = AvailabilityEvaluator(
            case_study, policy, database=database
        )

    coa_curve = availability_evaluator.transient_coa(
        design, times, tolerance=tolerance
    )
    steady_coa = availability_evaluator.coa(design)

    groups = _patch_groups(availability_evaluator, design)
    chain, full, zero = _completion_chain(groups)
    total = sum(count for _, count, _ in groups)
    solver = BatchTransientSolver(chain, tolerance=tolerance)
    distributions = solver.distributions({full: 1.0}, times)
    zero_index = chain.index_of(zero)
    completion = distributions[:, zero_index]
    unpatched_vector = np.array(
        [sum(state) / total for state in chain.states]
    )
    unpatched = distributions @ unpatched_vector
    try:
        mean_completion = float(mean_time_to_absorption(chain, start=full))
    except (SolverError, CtmcError):
        # A zero patch rate leaves part of the design unpatched forever
        # (the start state may itself be absorbing then).
        mean_completion = math.inf

    return DesignTimeline(
        design=design,
        times=times,
        coa=tuple(float(v) for v in coa_curve),
        completion_probability=tuple(float(v) for v in completion),
        unpatched_fraction=tuple(float(v) for v in unpatched),
        mean_time_to_completion=mean_completion,
        steady_coa=float(steady_coa),
        before=security_evaluator.before_patch(design),
        after=security_evaluator.after_patch(design, policy),
    )


def evaluate_timelines_shared(
    designs: Iterable[DesignSpec],
    times: Sequence[float],
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    database: VulnerabilityDatabase | None = None,
    tolerance: float = 1e-10,
    structure_sharing: bool = True,
    security_evaluator: SecurityEvaluator | None = None,
    availability_evaluator: AvailabilityEvaluator | None = None,
) -> list[DesignTimeline]:
    """Serial timelines of *designs* with one shared evaluator pair.

    The chunk primitive of :meth:`SweepEngine.timeline`: the shared
    :class:`AvailabilityEvaluator` amortises the per-role and
    per-variant lower-layer SRN solves — and, with *structure_sharing*
    on, the per-pattern canonical explorations — across every design in
    the chunk, whatever mix of spec kinds the chunk holds.  Pass
    evaluator instances (e.g. primed from shared memory) to reuse their
    caches.  Failures carry the design label and original traceback in
    a picklable :class:`~repro.errors.EvaluationError`.
    """
    import traceback

    if security_evaluator is None:
        security_evaluator = SecurityEvaluator(case_study, database=database)
    if availability_evaluator is None:
        availability_evaluator = AvailabilityEvaluator(
            case_study,
            policy,
            database=database,
            structure_sharing=structure_sharing,
        )
    results: list[DesignTimeline] = []
    for design in designs:
        try:
            results.append(
                evaluate_timeline(
                    design,
                    times,
                    case_study=case_study,
                    policy=policy,
                    security_evaluator=security_evaluator,
                    availability_evaluator=availability_evaluator,
                    tolerance=tolerance,
                )
            )
        except ReproError as exc:
            raise EvaluationError(
                f"timeline of design {design.label!r} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from None
        except Exception as exc:
            raise EvaluationError(
                f"timeline of design {design.label!r} failed: "
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            ) from None
    return results


def evaluate_timelines(
    designs: Iterable[DesignSpec],
    times: Sequence[float],
    case_study: EnterpriseCaseStudy | None = None,
    policy: PatchPolicy | None = None,
    executor: str | None = None,
    max_workers: int | None = None,
    database: VulnerabilityDatabase | None = None,
    tolerance: float = 1e-10,
) -> list[DesignTimeline]:
    """Timelines of many designs, optionally fanned out in parallel.

    *executor* selects a sweep-engine executor (``"serial"``,
    ``"thread"`` or ``"process"``); the default runs in-process without
    engine overhead.  Results are in input order and byte-identical
    across executors.
    """
    if case_study is None:
        case_study = paper_case_study()
    if policy is None:
        policy = CriticalVulnerabilityPolicy()
    if executor is not None and executor != "serial":
        from repro.evaluation.engine import SweepEngine

        engine = SweepEngine(
            case_study=case_study,
            policy=policy,
            executor=executor,
            max_workers=max_workers,
            database=database,
        )
        return engine.timeline(designs, times, tolerance=tolerance)
    return evaluate_timelines_shared(
        designs, times, case_study, policy, database=database, tolerance=tolerance
    )

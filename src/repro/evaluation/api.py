"""Canonical request/response schema of the evaluation service and CLI.

One module owns the wire format: the ``/v1`` request envelope, the
error envelope with stable machine-readable codes, the sweep/timeline
response payloads (``schema_version`` 3), deterministic shard
partitioning, and the payload-level Pareto recompute the shard
coordinator uses to merge partial sweeps byte-identically.

Request envelope (``POST /v1/sweep`` and ``POST /v1/timeline``)::

    {
      "space":   {"roles": [...], "max_replicas": N, "max_total": N|null,
                  "variants": bool, "scaled": "HxT"|[H, T]|null},
      "options": {"max_designs": N, "shard": {"index": I, "count": C},
                  # timeline only:
                  "horizon": H, "points": P, "times": [...],
                  "campaign": {...}, "phases": "...", "method": "..."},
      "priority": "interactive" | "batch",
      "deadline_ms": N,
      "stream": bool
    }

Every field is optional; defaults match the CLI.  The legacy flat
request shapes of ``POST /sweep`` / ``POST /timeline`` keep parsing
unchanged (and frozen — new capabilities are ``/v1``-only).

Error envelope (``/v1`` responses)::

    {"error": {"code": "<stable code>", "message": "...", "detail": {...}}}

Schema history: version 1 was the unversioned PR 2/3 payload shape,
version 2 added ``schema_version`` + campaign metadata to timelines,
version 3 (this module) versions the sweep payload too and is shared by
``repro sweep/timeline --json``, the service and the shard coordinator.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "SCHEMA_VERSION",
    "SpaceSpec",
    "ShardSpec",
    "SweepRequest",
    "TimelineRequest",
    "error_payload",
    "enumerate_space",
    "shard_of",
    "pareto_flags",
    "sweep_response",
    "timeline_response",
]

#: Version of the sweep/timeline JSON payloads (CLI, service, shards).
SCHEMA_VERSION = 3

#: Stable machine-readable error codes of the ``/v1`` error envelope.
ERROR_INVALID_REQUEST = "invalid_request"
ERROR_OVER_BUDGET = "over_budget"
ERROR_NOT_FOUND = "not_found"
ERROR_METHOD_NOT_ALLOWED = "method_not_allowed"
ERROR_SATURATED = "saturated"
ERROR_DEADLINE_EXCEEDED = "deadline_exceeded"
ERROR_INTERNAL = "internal"


def error_payload(code: str, message: str, detail: dict | None = None) -> dict:
    """The ``/v1`` error envelope: one stable code, one message."""
    return {"error": {"code": code, "message": message, "detail": detail or {}}}


# -- field-level parsing (shared by the legacy and /v1 surfaces) --------------

#: Flat fields of the legacy ``POST /sweep`` body (frozen).
LEGACY_SPACE_FIELDS = {
    "roles",
    "max_replicas",
    "max_total",
    "variants",
    "max_designs",
    "deadline_ms",
}
#: Flat fields of the legacy ``POST /timeline`` body (frozen).
LEGACY_TIMELINE_FIELDS = LEGACY_SPACE_FIELDS | {
    "horizon",
    "points",
    "times",
    "campaign",
    "phases",
}

_V1_ENVELOPE_FIELDS = {"space", "options", "priority", "deadline_ms", "stream"}
_V1_SPACE_FIELDS = {"roles", "max_replicas", "max_total", "variants", "scaled"}
_V1_SWEEP_OPTIONS = {"max_designs", "shard"}
_V1_TIMELINE_OPTIONS = _V1_SWEEP_OPTIONS | {
    "horizon",
    "points",
    "times",
    "campaign",
    "phases",
    "method",
}

_PRIORITIES = ("interactive", "batch")


def require_fields(payload: dict, allowed: set, endpoint: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValidationError(
            f"unknown {endpoint} request field(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


def parse_roles(value: object) -> list[str]:
    if value is None:
        value = ["dns", "web", "app", "db"]
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",")]
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(role, str) for role in value
    ):
        raise ValidationError(
            "roles must be a list of role names (or one comma-separated string)"
        )
    roles = list(dict.fromkeys(role for role in value if role))
    if not roles:
        raise ValidationError("no roles given")
    return roles


def parse_count(value: object, name: str, default: int | None) -> int | None:
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return value


def parse_scaled(value: object) -> tuple[int, int] | None:
    """``"HxT"`` / ``[H, T]`` → ``(hosts_per_tier, tiers)`` (or None)."""
    if value is None:
        return None
    if isinstance(value, str):
        parts = value.lower().replace("x", ",").split(",")
        try:
            hosts, tiers = (int(part) for part in parts)
        except ValueError:
            raise ValidationError(
                f"scaled expects HOSTSxTIERS (e.g. 9x4), got {value!r}"
            ) from None
        value = [hosts, tiers]
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or any(isinstance(v, bool) or not isinstance(v, int) for v in value)
    ):
        raise ValidationError(
            f"scaled must be 'HxT' or [hosts_per_tier, tiers], got {value!r}"
        )
    hosts, tiers = value
    if hosts < 1 or tiers < 1:
        raise ValidationError(
            f"scaled needs positive hosts_per_tier and tiers, got {value!r}"
        )
    return (hosts, tiers)


def parse_times(payload: dict) -> tuple[float, ...]:
    """The resolved time grid of a timeline request."""
    from repro.evaluation.timeline import default_time_grid

    times = payload.get("times")
    if times is not None:
        if not isinstance(times, (list, tuple)) or not times:
            raise ValidationError("times must be a non-empty list of hours")
        try:
            return tuple(float(t) for t in times)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"bad time grid: {exc}") from exc
    horizon = payload.get("horizon", 720.0)
    points = payload.get("points", 24)
    if not isinstance(horizon, (int, float)) or isinstance(horizon, bool):
        raise ValidationError(f"horizon must be a number, got {horizon!r}")
    if isinstance(points, bool) or not isinstance(points, int):
        raise ValidationError(f"points must be an integer, got {points!r}")
    return default_time_grid(float(horizon), points)


def parse_deadline_ms(value: object) -> float | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ValidationError(
            f"deadline_ms must be a positive number of milliseconds, got {value!r}"
        )
    return float(value)


def parse_campaign(payload: dict):
    """The request's staged rollout (``campaign`` spec or ``phases``)."""
    from repro.patching.campaign import PatchCampaign

    campaign, phases = payload.get("campaign"), payload.get("phases")
    if campaign is not None and phases is not None:
        raise ValidationError("campaign and phases are mutually exclusive")
    if campaign is not None:
        return PatchCampaign.from_dict(campaign)
    if phases is not None:
        if not isinstance(phases, str):
            raise ValidationError(
                "phases must be a shorthand string like 'canary:0.1:48,fleet:1.0'"
            )
        return PatchCampaign.parse(phases)
    return None


def _parse_priority(value: object) -> str:
    if value is None:
        return "interactive"
    if value not in _PRIORITIES:
        raise ValidationError(
            f"priority must be one of {list(_PRIORITIES)}, got {value!r}"
        )
    return value


def _parse_method(value: object) -> str:
    if value is None:
        return "uniformisation"
    if not isinstance(value, str) or not value:
        raise ValidationError(f"method must be a backend name, got {value!r}")
    return value


# -- sharding -----------------------------------------------------------------


def shard_of(design, count: int) -> int:
    """Deterministic shard index of *design* among *count* shards.

    Hashes ``repr(design.cache_key())`` — primitive tuples, stable
    across processes and interpreter runs (unlike builtin ``hash``, no
    ``PYTHONHASHSEED`` sensitivity) — so every coordinator and every
    service agree on the partition without coordination.
    """
    digest = hashlib.sha256(repr(design.cache_key()).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % count


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of a design space: ``index`` of ``count``."""

    index: int
    count: int

    @classmethod
    def from_payload(cls, value: object) -> "ShardSpec | None":
        if value is None:
            return None
        if not isinstance(value, dict) or set(value) - {"index", "count"}:
            raise ValidationError(
                f"shard must be {{'index': I, 'count': C}}, got {value!r}"
            )
        count = parse_count(value.get("count"), "shard count", None)
        index = value.get("index")
        if count is None:
            raise ValidationError("shard count is required")
        if isinstance(index, bool) or not isinstance(index, int):
            raise ValidationError(f"shard index must be an integer, got {index!r}")
        if not 0 <= index < count:
            raise ValidationError(
                f"shard index {index} out of range for count {count}"
            )
        return cls(index=index, count=count)

    def to_payload(self) -> dict:
        return {"index": self.index, "count": self.count}

    def owns(self, design) -> bool:
        return shard_of(design, self.count) == self.index


# -- the design space ---------------------------------------------------------


@dataclass(frozen=True)
class SpaceSpec:
    """The design-space half of a request, defaults filled.

    ``scaled`` selects a generated chain enterprise
    (:func:`~repro.enterprise.scaled.scaled_case_study`) whose single
    large design *is* the space; it is mutually exclusive with
    ``variants`` and makes ``roles`` advisory (the generated tier names
    take over, exactly as ``repro sweep --scaled`` does).
    """

    roles: tuple[str, ...]
    max_replicas: int = 2
    max_total: int | None = None
    variants: bool = False
    scaled: tuple[int, int] | None = None

    @classmethod
    def from_payload(cls, payload: dict, allow_scaled: bool = True) -> "SpaceSpec":
        scaled = parse_scaled(payload.get("scaled")) if allow_scaled else None
        if scaled is not None and payload.get("variants"):
            raise ValidationError("scaled and variants are mutually exclusive")
        return cls(
            roles=tuple(parse_roles(payload.get("roles"))),
            max_replicas=parse_count(payload.get("max_replicas"), "max_replicas", 2),
            max_total=parse_count(payload.get("max_total"), "max_total", None),
            variants=bool(payload.get("variants", False)),
            scaled=scaled,
        )

    def to_payload(self) -> dict:
        payload = {
            "roles": list(self.roles),
            "max_replicas": self.max_replicas,
            "max_total": self.max_total,
            "variants": self.variants,
        }
        if self.scaled is not None:
            payload["scaled"] = list(self.scaled)
        return payload

    def context_label(self) -> str:
        """The engine-lane context this space evaluates under."""
        if self.scaled is not None:
            return f"scaled:{self.scaled[0]}x{self.scaled[1]}"
        return "default"


def enumerate_space(space: SpaceSpec) -> list:
    """Every design of *space*, in canonical enumeration order.

    The one enumeration shared by the service, the CLI and the shard
    coordinator — shard merging relies on all three agreeing on it.
    """
    from repro.evaluation.sweep import (
        enumerate_designs,
        enumerate_heterogeneous_designs,
    )

    if space.scaled is not None:
        from repro.enterprise.scaled import scaled_case_study

        _, design = scaled_case_study(*space.scaled)
        return [design]
    if space.variants:
        from repro.enterprise import paper_variant_space

        pools = paper_variant_space()
        unknown = [role for role in space.roles if role not in pools]
        if unknown:
            raise ValidationError(
                f"no variant pool for roles {unknown}; "
                f"choose from {sorted(pools)}"
            )
        return list(
            enumerate_heterogeneous_designs(
                list(space.roles),
                {role: pools[role] for role in space.roles},
                max_replicas=space.max_replicas,
                max_total=space.max_total,
            )
        )
    return list(
        enumerate_designs(
            list(space.roles),
            max_replicas=space.max_replicas,
            max_total=space.max_total,
        )
    )


# -- requests -----------------------------------------------------------------


@dataclass
class SweepRequest:
    """A parsed sweep request (legacy flat or ``/v1`` envelope)."""

    space: SpaceSpec
    max_designs: int | None = None
    shard: ShardSpec | None = None
    priority: str = "interactive"
    deadline_ms: float | None = None
    stream: bool = False

    endpoint = "/sweep"

    @classmethod
    def from_payload(cls, payload: dict, legacy: bool = False) -> "SweepRequest":
        if legacy:
            require_fields(payload, LEGACY_SPACE_FIELDS, "sweep")
            return cls(
                space=SpaceSpec.from_payload(payload, allow_scaled=False),
                max_designs=parse_count(
                    payload.get("max_designs"), "max_designs", None
                ),
                deadline_ms=parse_deadline_ms(payload.get("deadline_ms")),
            )
        require_fields(payload, _V1_ENVELOPE_FIELDS, "sweep")
        space, options = cls._envelope_halves(payload, _V1_SWEEP_OPTIONS)
        return cls(
            space=SpaceSpec.from_payload(space),
            max_designs=parse_count(
                options.get("max_designs"), "max_designs", None
            ),
            shard=ShardSpec.from_payload(options.get("shard")),
            priority=_parse_priority(payload.get("priority")),
            deadline_ms=parse_deadline_ms(payload.get("deadline_ms")),
            stream=bool(payload.get("stream", False)),
        )

    @staticmethod
    def _envelope_halves(payload: dict, allowed_options: set) -> tuple[dict, dict]:
        space = payload.get("space") or {}
        options = payload.get("options") or {}
        for name, value in (("space", space), ("options", options)):
            if not isinstance(value, dict):
                raise ValidationError(f"{name} must be a JSON object, got {value!r}")
        require_fields(space, _V1_SPACE_FIELDS, "space")
        require_fields(options, allowed_options, "options")
        return space, options

    def to_payload(self) -> dict:
        """The ``/v1`` envelope re-emitting this request."""
        options: dict = {}
        if self.max_designs is not None:
            options["max_designs"] = self.max_designs
        if self.shard is not None:
            options["shard"] = self.shard.to_payload()
        payload: dict = {"space": self.space.to_payload()}
        if options:
            payload["options"] = options
        if self.priority != "interactive":
            payload["priority"] = self.priority
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        if self.stream:
            payload["stream"] = True
        return payload

    def canonical(self) -> dict:
        """Order-independent identity for request deduplication."""
        canonical = {
            "endpoint": self.endpoint,
            **self.space.to_payload(),
        }
        if self.shard is not None:
            canonical["shard"] = self.shard.to_payload()
        return canonical

    def context_label(self) -> str:
        """The engine-lane context this request evaluates under."""
        return self.space.context_label()


@dataclass
class TimelineRequest(SweepRequest):
    """A parsed timeline request: the sweep fields plus grid/campaign."""

    times: tuple[float, ...] = ()
    campaign: object = None
    method: str = "uniformisation"

    endpoint = "/timeline"

    @classmethod
    def from_payload(cls, payload: dict, legacy: bool = False) -> "TimelineRequest":
        if legacy:
            require_fields(payload, LEGACY_TIMELINE_FIELDS, "timeline")
            return cls(
                space=SpaceSpec.from_payload(payload, allow_scaled=False),
                max_designs=parse_count(
                    payload.get("max_designs"), "max_designs", None
                ),
                deadline_ms=parse_deadline_ms(payload.get("deadline_ms")),
                times=parse_times(payload),
                campaign=parse_campaign(payload),
            )
        require_fields(payload, _V1_ENVELOPE_FIELDS, "timeline")
        space, options = cls._envelope_halves(payload, _V1_TIMELINE_OPTIONS)
        return cls(
            space=SpaceSpec.from_payload(space),
            max_designs=parse_count(
                options.get("max_designs"), "max_designs", None
            ),
            shard=ShardSpec.from_payload(options.get("shard")),
            priority=_parse_priority(payload.get("priority")),
            deadline_ms=parse_deadline_ms(payload.get("deadline_ms")),
            stream=bool(payload.get("stream", False)),
            times=parse_times(options),
            campaign=parse_campaign(options),
            method=_parse_method(options.get("method")),
        )

    def to_payload(self) -> dict:
        payload = super().to_payload()
        options = payload.setdefault("options", {})
        options["times"] = list(self.times)
        if self.campaign is not None:
            options["campaign"] = self.campaign.to_dict()
        if self.method != "uniformisation":
            options["method"] = self.method
        return payload

    def canonical(self) -> dict:
        canonical = super().canonical()
        canonical["times"] = list(self.times)
        canonical["campaign"] = (
            self.campaign.to_dict() if self.campaign is not None else None
        )
        if self.method != "uniformisation":
            canonical["method"] = self.method
        return canonical

    def context_label(self) -> str:
        """Lane context: the space plus the campaign fingerprint."""
        label = self.space.context_label()
        if self.campaign is not None:
            fingerprint = hashlib.sha256(
                repr(self.campaign.cache_key()).encode("utf-8")
            ).hexdigest()[:12]
            label = f"{label}|campaign:{fingerprint}"
        return label


# -- responses ----------------------------------------------------------------


@dataclass
class SweepResponse:
    """The canonical sweep payload (CLI ``--json``, service, shards)."""

    roles: list[str]
    max_replicas: int
    max_total: int | None
    variants: bool
    executor: str
    designs: list[dict] = field(default_factory=list)

    @classmethod
    def from_evaluations(
        cls,
        roles: Sequence[str],
        max_replicas: int,
        max_total: int | None,
        variants: bool,
        executor_name: str,
        evaluations,
    ) -> "SweepResponse":
        from repro.evaluation.report import design_payload
        from repro.evaluation.sweep import pareto_front

        front = {id(e) for e in pareto_front(evaluations, after_patch=True)}
        return cls(
            roles=list(roles),
            max_replicas=max_replicas,
            max_total=max_total,
            variants=bool(variants),
            executor=executor_name,
            designs=[
                design_payload(evaluation, id(evaluation) in front)
                for evaluation in evaluations
            ],
        )

    @classmethod
    def from_payload(cls, payload: dict) -> "SweepResponse":
        return cls(
            roles=list(payload["roles"]),
            max_replicas=payload["max_replicas"],
            max_total=payload["max_total"],
            variants=payload["variants"],
            executor=payload["executor"],
            designs=list(payload["designs"]),
        )

    def to_payload(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "roles": list(self.roles),
            "max_replicas": self.max_replicas,
            "max_total": self.max_total,
            "variants": bool(self.variants),
            "executor": self.executor,
            "design_count": len(self.designs),
            "designs": list(self.designs),
        }


@dataclass
class TimelineResponse:
    """The canonical timeline payload (CLI ``--json``, service, shards)."""

    roles: list[str]
    max_replicas: int
    max_total: int | None
    variants: bool
    executor: str
    campaign: dict | None
    times: list[float]
    designs: list[dict] = field(default_factory=list)

    @classmethod
    def from_timelines(
        cls,
        roles: Sequence[str],
        max_replicas: int,
        max_total: int | None,
        variants: bool,
        executor_name: str,
        campaign,
        times: Sequence[float],
        timelines,
    ) -> "TimelineResponse":
        from repro.evaluation.timeline import timeline_payload

        return cls(
            roles=list(roles),
            max_replicas=max_replicas,
            max_total=max_total,
            variants=bool(variants),
            executor=executor_name,
            campaign=campaign.to_dict() if campaign is not None else None,
            times=list(times),
            designs=[timeline_payload(timeline) for timeline in timelines],
        )

    @classmethod
    def from_payload(cls, payload: dict) -> "TimelineResponse":
        return cls(
            roles=list(payload["roles"]),
            max_replicas=payload["max_replicas"],
            max_total=payload["max_total"],
            variants=payload["variants"],
            executor=payload["executor"],
            campaign=payload["campaign"],
            times=list(payload["times"]),
            designs=list(payload["designs"]),
        )

    def to_payload(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "roles": list(self.roles),
            "max_replicas": self.max_replicas,
            "max_total": self.max_total,
            "variants": bool(self.variants),
            "executor": self.executor,
            "campaign": self.campaign,
            "times": list(self.times),
            "design_count": len(self.designs),
            "designs": list(self.designs),
        }


def sweep_response(
    roles: Sequence[str],
    max_replicas: int,
    max_total: int | None,
    variants: bool,
    executor_name: str,
    evaluations,
) -> dict:
    """The canonical ``sweep`` JSON payload (CLI and service)."""
    return SweepResponse.from_evaluations(
        roles, max_replicas, max_total, variants, executor_name, evaluations
    ).to_payload()


def timeline_response(
    roles: Sequence[str],
    max_replicas: int,
    max_total: int | None,
    variants: bool,
    executor_name: str,
    campaign,
    times: Sequence[float],
    timelines,
) -> dict:
    """The canonical ``timeline`` JSON payload (CLI and service)."""
    return TimelineResponse.from_timelines(
        roles,
        max_replicas,
        max_total,
        variants,
        executor_name,
        campaign,
        times,
        timelines,
    ).to_payload()


def pareto_flags(design_payloads: Sequence[dict]) -> list[bool]:
    """Recompute the Pareto front over already-serialised designs.

    Replicates :func:`repro.evaluation.sweep.pareto_front` bit-exactly
    over the JSON ``after`` snapshots (``ASP`` asc, ``COA`` desc) — the
    shard coordinator's merge step: per-shard ``pareto`` flags only see
    a subset, so the front is re-ranked over the merged space.
    """
    if not design_payloads:
        return []
    asp = np.array([d["after"]["ASP"] for d in design_payloads], dtype=float)
    coa = np.array([d["after"]["COA"] for d in design_payloads], dtype=float)
    order = np.lexsort((-coa, asp))
    sorted_asp = asp[order]
    sorted_coa = coa[order]
    group_start = np.concatenate(([True], sorted_asp[1:] != sorted_asp[:-1]))
    group_ids = np.cumsum(group_start) - 1
    group_max = sorted_coa[group_start]
    best_before = np.concatenate(
        ([-np.inf], np.maximum.accumulate(group_max)[:-1])
    )
    survives = (sorted_coa == group_max[group_ids]) & (
        group_max[group_ids] > best_before[group_ids]
    )
    keep = np.zeros(len(design_payloads), dtype=bool)
    keep[order] = survives
    return [bool(flag) for flag in keep]


def canonical_json(payload: dict) -> str:
    """The dedup fingerprint of a canonicalised request dict."""
    return json.dumps(payload, sort_keys=True, default=str)

"""Resident evaluation service: a warm :class:`SweepEngine` behind HTTP.

The CLI pays the full start-up bill on every invocation — interpreter,
case-study solves, process-pool spawn, shared-memory priming.  This
module keeps all of that resident: one :class:`EvaluationService` owns
one warm :class:`~repro.evaluation.engine.SweepEngine` (persistent
worker pool, retained shared-memory segment, in-memory and optional
sqlite result caches) and fronts it with a small asyncio HTTP/JSON API
(stdlib only), multiplexing many concurrent sweep/timeline requests
over the single engine.

Endpoints
---------
``POST /sweep``
    Body ``{"roles": [...], "max_replicas": N, "max_total": N|null,
    "variants": bool, "max_designs": N}`` (all optional; defaults match
    the CLI).  Responds with exactly the payload ``repro sweep --json``
    prints (modulo the ``executor`` field naming the service's
    executor) — both go through :func:`sweep_response`.
``POST /timeline``
    The sweep fields plus ``{"horizon": H, "points": P}`` or an
    explicit ``"times": [...]``, and optionally a staged rollout as
    ``"campaign": {...}`` (JSON spec) or ``"phases": "name:mult[:trig
    [:canary]],..."`` shorthand (mutually exclusive).  Responds with
    the ``repro timeline --json`` payload (:func:`timeline_response`).
``GET /healthz``
    Liveness plus observability: uptime, engine/pool state (executor,
    structure sharing, pool recycles, cache hit counters) and the
    per-endpoint request/latency/cache counters.
``GET /metrics``
    Just the counters and latency aggregates.

Request semantics
-----------------
* **Queueing.**  All engine work runs on one dedicated compute thread
  (the engine is not thread-safe); requests queue FIFO behind it while
  the asyncio loop keeps accepting connections and serving
  ``/healthz``.
* **Budgets.**  Every request's enumerated design count is checked
  against the service budget (``max_designs``, default
  :data:`DEFAULT_MAX_DESIGNS`); a request may lower — never raise — its
  own budget with a ``max_designs`` field.  Over budget is a 400, not a
  queue entry.
* **Dedup.**  Requests are canonicalised (defaults filled, grids
  resolved) and fingerprinted; identical in-flight requests share one
  computation — one engine call, many responders.  Completed responses
  are kept in a small FIFO memory, so repeats are served without
  touching the compute queue at all; behind both sits the engine's
  in-memory memo and (when configured) the thread-safe sqlite store of
  :mod:`repro.evaluation.cache`.
* **Resilience.**  A killed pool worker surfaces as one recycled pool
  (respawn + re-prime + one retry) inside the engine, not as a failed
  request; ``pool_recycles`` in ``/healthz`` counts the occurrences.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from repro import observability
from repro.errors import EvaluationError, ReproError, ValidationError

_logger = logging.getLogger(__name__)

#: Structured JSON access log, one line per request.  Silent unless a
#: handler is attached (``repro serve`` attaches one via
#: :func:`configure_access_logs`; embedded/test services stay quiet).
_access_logger = logging.getLogger("repro.serve.access")

_REQUESTS = observability.counter(
    "repro_service_requests_total",
    "HTTP requests dispatched, by endpoint.",
)
_REQUEST_SECONDS = observability.histogram(
    "repro_service_request_seconds",
    "Request handling latency by endpoint and outcome.",
)
_SERVICE_CACHE = observability.counter(
    "repro_service_cache_hits_total",
    "Requests served from the dedup/response fast paths, by tier.",
)
_SERVICE_ERRORS = observability.counter(
    "repro_service_errors_total",
    "Requests that failed (validation or compute).",
).labels()
_SERVICE_COMPUTED = observability.counter(
    "repro_service_computed_total",
    "Requests computed through the engine (not served from caches).",
).labels()
_IN_FLIGHT = observability.gauge(
    "repro_service_in_flight",
    "Deduplicated computations currently in flight.",
).labels()

#: Accept-header fragments that select the Prometheus text exposition
#: for ``GET /metrics`` (JSON stays the default).
_PROMETHEUS_ACCEPT = ("text/plain", "openmetrics", "prometheus")
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def configure_access_logs() -> None:
    """Attach a stderr handler to the access log (idempotent).

    Called by ``repro serve``: every request then emits one structured
    JSON line (time, method, path, status, duration) to stderr, keeping
    stdout for the announce line.  Embedded services skip this and stay
    silent unless the application configures the
    ``repro.serve.access`` logger itself.
    """
    if not _access_logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        _access_logger.addHandler(handler)
        _access_logger.setLevel(logging.INFO)
        _access_logger.propagate = False

__all__ = [
    "DEFAULT_MAX_DESIGNS",
    "DEFAULT_PORT",
    "EvaluationService",
    "ServiceClient",
    "sweep_response",
    "timeline_response",
]

#: Default design-count budget per request.
DEFAULT_MAX_DESIGNS = 512

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8351

#: Version of the ``timeline`` JSON schema (shared with the CLI).
#: Version 2 added ``schema_version`` itself plus the campaign metadata
#: (top-level ``campaign``, per-design ``phase_starts``); consumers
#: should treat a payload without the field as version 1.
TIMELINE_SCHEMA_VERSION = 2

#: Completed responses remembered for the fast path (FIFO-bounded; a
#: fallen-out entry recomputes through the engine memo, still cheap).
_MAX_REMEMBERED_RESPONSES = 128

#: Hard cap on request body size (a design-space spec is tiny).
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


# -- response envelopes (shared with the CLI) ---------------------------------


def sweep_response(
    roles: Sequence[str],
    max_replicas: int,
    max_total: int | None,
    variants: bool,
    executor_name: str,
    evaluations,
) -> dict:
    """The canonical ``sweep`` JSON payload (CLI and service)."""
    from repro.evaluation.report import design_payload
    from repro.evaluation.sweep import pareto_front

    front = {id(e) for e in pareto_front(evaluations, after_patch=True)}
    return {
        "roles": list(roles),
        "max_replicas": max_replicas,
        "max_total": max_total,
        "variants": bool(variants),
        "executor": executor_name,
        "design_count": len(evaluations),
        "designs": [
            design_payload(evaluation, id(evaluation) in front)
            for evaluation in evaluations
        ],
    }


def timeline_response(
    roles: Sequence[str],
    max_replicas: int,
    max_total: int | None,
    variants: bool,
    executor_name: str,
    campaign,
    times: Sequence[float],
    timelines,
) -> dict:
    """The canonical ``timeline`` JSON payload (CLI and service)."""
    from repro.evaluation.timeline import timeline_payload

    return {
        "schema_version": TIMELINE_SCHEMA_VERSION,
        "roles": list(roles),
        "max_replicas": max_replicas,
        "max_total": max_total,
        "variants": bool(variants),
        "executor": executor_name,
        "campaign": campaign.to_dict() if campaign is not None else None,
        "times": list(times),
        "design_count": len(timelines),
        "designs": [timeline_payload(timeline) for timeline in timelines],
    }


# -- request normalisation ----------------------------------------------------

_SPACE_FIELDS = {"roles", "max_replicas", "max_total", "variants", "max_designs"}
_TIMELINE_FIELDS = _SPACE_FIELDS | {
    "horizon",
    "points",
    "times",
    "campaign",
    "phases",
}


def _require_fields(payload: dict, allowed: set, endpoint: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValidationError(
            f"unknown {endpoint} request field(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


def _parse_roles(value: object) -> list[str]:
    if value is None:
        value = ["dns", "web", "app", "db"]
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",")]
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(role, str) for role in value
    ):
        raise ValidationError(
            "roles must be a list of role names (or one comma-separated string)"
        )
    roles = list(dict.fromkeys(role for role in value if role))
    if not roles:
        raise ValidationError("no roles given")
    return roles


def _parse_count(value: object, name: str, default: int | None) -> int | None:
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return value


def _normalize_space(payload: dict) -> dict:
    """Fill defaults and validate the design-space half of a request."""
    return {
        "roles": _parse_roles(payload.get("roles")),
        "max_replicas": _parse_count(payload.get("max_replicas"), "max_replicas", 2),
        "max_total": _parse_count(payload.get("max_total"), "max_total", None),
        "variants": bool(payload.get("variants", False)),
    }


def _parse_times(payload: dict) -> tuple[float, ...]:
    """The resolved time grid of a timeline request."""
    from repro.evaluation.timeline import default_time_grid

    times = payload.get("times")
    if times is not None:
        if not isinstance(times, (list, tuple)) or not times:
            raise ValidationError("times must be a non-empty list of hours")
        try:
            return tuple(float(t) for t in times)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"bad time grid: {exc}") from exc
    horizon = payload.get("horizon", 720.0)
    points = payload.get("points", 24)
    if not isinstance(horizon, (int, float)) or isinstance(horizon, bool):
        raise ValidationError(f"horizon must be a number, got {horizon!r}")
    if isinstance(points, bool) or not isinstance(points, int):
        raise ValidationError(f"points must be an integer, got {points!r}")
    return default_time_grid(float(horizon), points)


def _parse_campaign(payload: dict):
    """The request's staged rollout (``campaign`` spec or ``phases``)."""
    from repro.patching.campaign import PatchCampaign

    campaign, phases = payload.get("campaign"), payload.get("phases")
    if campaign is not None and phases is not None:
        raise ValidationError("campaign and phases are mutually exclusive")
    if campaign is not None:
        return PatchCampaign.from_dict(campaign)
    if phases is not None:
        if not isinstance(phases, str):
            raise ValidationError(
                "phases must be a shorthand string like 'canary:0.1:48,fleet:1.0'"
            )
        return PatchCampaign.parse(phases)
    return None


# -- the service --------------------------------------------------------------


class EvaluationService:
    """One warm sweep engine behind an asyncio HTTP/JSON API.

    Parameters
    ----------
    case_study / policy:
        Evaluation context (defaults: the paper's).
    executor:
        ``"process"`` (default) or ``"thread"`` build a *persistent*
        pool executor — the warm pool the service exists for;
        ``"serial"`` runs in-process (useful for tests); an
        :class:`~repro.evaluation.engine.Executor` instance is used
        as-is.
    max_workers / chunk_size / structure_sharing / cache_path:
        Passed through to the engine (``cache_path`` enables the
        thread-safe sqlite result store shared across restarts).
    max_designs:
        Per-request design-count budget (:data:`DEFAULT_MAX_DESIGNS`).

    Use :meth:`run` to serve blocking (the CLI), or
    :meth:`start_in_thread`/:meth:`stop` for an in-process instance
    (tests); :meth:`close` releases the engine's warm pool, segment and
    cache.
    """

    def __init__(
        self,
        case_study=None,
        policy=None,
        executor="process",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        structure_sharing: bool = True,
        cache_path=None,
        max_designs: int = DEFAULT_MAX_DESIGNS,
    ) -> None:
        from repro._validation import check_positive_int
        from repro.evaluation.engine import (
            ProcessExecutor,
            SweepEngine,
            ThreadExecutor,
        )
        from repro.vulnerability.diversity import diversity_database

        check_positive_int(max_designs, "max_designs")
        self.max_designs = max_designs
        if executor == "process":
            executor = ProcessExecutor(max_workers=max_workers, persistent=True)
            max_workers = None
        elif executor == "thread":
            executor = ThreadExecutor(max_workers=max_workers, persistent=True)
            max_workers = None
        # The diversity database serves heterogeneous (variants=true)
        # requests; homogeneous designs never consult it, so results
        # match a database-less CLI engine byte for byte.
        self.engine = SweepEngine(
            case_study=case_study,
            policy=policy,
            executor=executor,
            max_workers=max_workers,
            chunk_size=chunk_size,
            database=diversity_database(),
            structure_sharing=structure_sharing,
            cache_path=cache_path,
        )
        # One compute thread: the engine is single-threaded by design,
        # and the thread's FIFO work queue is the request queue.
        self._compute = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-compute"
        )
        self._inflight: dict[str, asyncio.Future] = {}
        self._responses: dict[str, dict] = {}
        self._counters = {
            "requests_total": 0,
            "dedup_hits": 0,
            "response_cache_hits": 0,
            "computed": 0,
            "errors": 0,
        }
        self._latency: dict[str, dict] = {}
        self._started = time.monotonic()
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def run(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        announce: bool = True,
    ) -> None:
        """Serve until interrupted (blocking; the ``repro serve`` body)."""
        configure_access_logs()
        asyncio.run(self._serve(host, port, announce))

    async def _serve(self, host: str, port: int, announce: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle, host, port)
        self.address = server.sockets[0].getsockname()[:2]
        if announce:
            print(
                f"repro serve: http://{self.address[0]}:{self.address[1]} "
                f"(endpoints: POST /sweep, POST /timeline, GET /healthz; "
                f"executor {self.engine.executor.name}, "
                f"budget {self.max_designs} designs/request)",
                flush=True,
            )
        async with server:
            await self._stop_event.wait()

    def start_in_thread(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "ServiceClient":
        """Serve from a daemon thread; returns a ready client.

        ``port=0`` binds an ephemeral port (see :attr:`address`).  Used
        by tests and embedding applications; pair with :meth:`stop`.
        """
        if self._thread is not None:
            raise EvaluationError("service already started")
        started = threading.Event()

        def _target() -> None:
            async def _main() -> None:
                started.set()
                await self._serve(host, port, announce=False)

            asyncio.run(_main())

        self._thread = threading.Thread(
            target=_target, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30.0):  # pragma: no cover - defensive
            raise EvaluationError("service thread failed to start")
        # The event fires just before the socket binds; poll readiness.
        deadline = time.monotonic() + 30.0
        while self.address is None:
            if time.monotonic() > deadline:  # pragma: no cover - defensive
                raise EvaluationError("service failed to bind its socket")
            time.sleep(0.01)
        client = ServiceClient(self.address[0], self.address[1])
        client.wait_until_ready(timeout=30.0)
        return client

    def stop(self) -> None:
        """Stop a :meth:`start_in_thread` server (idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def close(self) -> None:
        """Stop serving and release the engine's warm-pool resources."""
        if self._closed:
            return
        self._closed = True
        self.stop()
        self._compute.shutdown(wait=True, cancel_futures=True)
        self.engine.close()

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        started = time.perf_counter()
        request = None
        status, payload = 500, {"error": "internal error"}
        try:
            request = await self._read_request(reader)
            if request is None:
                status, payload = 400, {"error": "malformed HTTP request"}
            else:
                status, payload = await self._dispatch(*request)
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # never leak a traceback as a hang
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if isinstance(payload, str):
            # Pre-rendered text (the Prometheus exposition).
            body = payload.encode()
            content_type = _PROMETHEUS_CONTENT_TYPE
        else:
            body = (json.dumps(payload, indent=2) + "\n").encode()
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        self._log_access(request, status, time.perf_counter() - started)

    @staticmethod
    def _log_access(request, status: int, seconds: float) -> None:
        if not _access_logger.isEnabledFor(logging.INFO):
            return
        method, path = (request[0], request[1]) if request else ("-", "-")
        _access_logger.info(
            json.dumps(
                {
                    "time": time.strftime(
                        "%Y-%m-%dT%H:%M:%S%z", time.localtime()
                    ),
                    "method": method,
                    "path": path,
                    "status": status,
                    "duration_ms": round(seconds * 1000.0, 3),
                },
                sort_keys=True,
            )
        )

    @staticmethod
    async def _read_request(reader):
        """``(method, path, body, headers)`` of one request, else None.

        *headers* maps lower-cased names to values (last wins) — enough
        for content-length framing and ``Accept`` negotiation.
        """
        line = await reader.readline()
        parts = line.decode("latin1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return None
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], body, headers

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes, headers=None
    ):
        self._counters["requests_total"] += 1
        known = ("/healthz", "/metrics", "/sweep", "/timeline")
        _REQUESTS.inc(endpoint=path if path in known else "other")
        if path in ("/healthz", "/metrics"):
            if method != "GET":
                return 405, {"error": f"{path} is GET-only"}
            if path == "/healthz":
                return 200, self.healthz()
            accept = (headers or {}).get("accept", "")
            if any(token in accept for token in _PROMETHEUS_ACCEPT):
                self._sync_registry()
                return 200, observability.REGISTRY.to_prometheus()
            return 200, self.metrics()
        if path not in ("/sweep", "/timeline"):
            return 404, {
                "error": f"unknown path {path!r}; "
                "endpoints: POST /sweep, POST /timeline, GET /healthz, GET /metrics"
            }
        if method != "POST":
            return 405, {"error": f"{path} is POST-only"}
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(request, dict):
            return 400, {"error": "request body must be a JSON object"}
        start = time.perf_counter()
        try:
            key, job = self._prepare(path, request)
        except ReproError as exc:
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            # Failing requests must stay visible in latency aggregates:
            # record under the errors class before returning.
            self._record_latency(
                path, time.perf_counter() - start, outcome="errors"
            )
            return 400, {"error": str(exc)}
        response = self._responses.get(key)
        if response is not None:
            self._counters["response_cache_hits"] += 1
            _SERVICE_CACHE.inc(tier="response")
            self._record_latency(path, time.perf_counter() - start)
            return 200, response
        loop = asyncio.get_running_loop()
        future = self._inflight.get(key)
        if future is not None:
            # Identical request already computing: one computation,
            # many responders.
            self._counters["dedup_hits"] += 1
            _SERVICE_CACHE.inc(tier="dedup")
        else:
            future = loop.create_future()
            self._inflight[key] = future
            loop.create_task(self._compute_job(key, job, future))
        try:
            response = await future
        except ReproError as exc:
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            self._record_latency(
                path, time.perf_counter() - start, outcome="errors"
            )
            return 500, {"error": str(exc)}
        self._record_latency(path, time.perf_counter() - start)
        return 200, response

    async def _compute_job(self, key: str, job, future: asyncio.Future) -> None:
        """Run *job* on the compute thread; fan the result out."""
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(self._compute, job)
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_exception(exc)
            return
        self._inflight.pop(key, None)
        self._counters["computed"] += 1
        _SERVICE_COMPUTED.inc()
        self._remember(key, response)
        if not future.cancelled():
            future.set_result(response)

    def _prepare(self, path: str, request: dict):
        """Canonical dedup key + compute closure of one request.

        Raises :class:`~repro.errors.ReproError` on validation
        failures, including a blown design-count budget — checked here,
        before the request can occupy the queue.
        """
        allowed = _SPACE_FIELDS if path == "/sweep" else _TIMELINE_FIELDS
        _require_fields(request, allowed, path.lstrip("/"))
        space = _normalize_space(request)
        designs = self._enumerate(space)
        budget = _parse_count(
            request.get("max_designs"), "max_designs", self.max_designs
        )
        budget = min(budget, self.max_designs)
        if len(designs) > budget:
            raise ValidationError(
                f"request enumerates {len(designs)} designs, over the "
                f"budget of {budget}; shrink the space or raise the "
                "service's --max-designs"
            )
        canonical = dict(space)
        if path == "/timeline":
            times = _parse_times(request)
            campaign = _parse_campaign(request)
            canonical["times"] = list(times)
            canonical["campaign"] = (
                campaign.to_dict() if campaign is not None else None
            )
            job = partial(self._timeline_job, space, designs, times, campaign)
        else:
            job = partial(self._sweep_job, space, designs)
        key = json.dumps(
            {"endpoint": path, **canonical}, sort_keys=True, default=str
        )
        return key, job

    def _enumerate(self, space: dict) -> list:
        from repro.evaluation.sweep import (
            enumerate_designs,
            enumerate_heterogeneous_designs,
        )

        if space["variants"]:
            from repro.enterprise import paper_variant_space

            pools = paper_variant_space()
            unknown = [role for role in space["roles"] if role not in pools]
            if unknown:
                raise ValidationError(
                    f"no variant pool for roles {unknown}; "
                    f"choose from {sorted(pools)}"
                )
            return list(
                enumerate_heterogeneous_designs(
                    space["roles"],
                    {role: pools[role] for role in space["roles"]},
                    max_replicas=space["max_replicas"],
                    max_total=space["max_total"],
                )
            )
        return list(
            enumerate_designs(
                space["roles"],
                max_replicas=space["max_replicas"],
                max_total=space["max_total"],
            )
        )

    # The job bodies run on the dedicated compute thread — the only
    # place the engine is ever touched after construction.

    def _sweep_job(self, space: dict, designs) -> dict:
        evaluations = self.engine.evaluate(designs)
        return sweep_response(
            space["roles"],
            space["max_replicas"],
            space["max_total"],
            space["variants"],
            self.engine.executor.name,
            evaluations,
        )

    def _timeline_job(self, space: dict, designs, times, campaign) -> dict:
        timelines = self.engine.timeline(designs, times, campaign=campaign)
        return timeline_response(
            space["roles"],
            space["max_replicas"],
            space["max_total"],
            space["variants"],
            self.engine.executor.name,
            campaign,
            times,
            timelines,
        )

    def _remember(self, key: str, response: dict) -> None:
        while len(self._responses) >= _MAX_REMEMBERED_RESPONSES:
            self._responses.pop(next(iter(self._responses)))
        self._responses[key] = response

    def _record_latency(
        self, path: str, seconds: float, outcome: str = "ok"
    ) -> None:
        """Fold one request's latency into the per-endpoint aggregates.

        Failing requests land in a separate ``<path>#errors`` class so
        error latencies never skew the healthy aggregates — and are
        never silently dropped.
        """
        key = path if outcome == "ok" else f"{path}#{outcome}"
        stats = self._latency.setdefault(
            key,
            {
                "count": 0,
                "total_s": 0.0,
                "mean_s": 0.0,
                "min_s": None,
                "max_s": 0.0,
                "last_s": 0.0,
            },
        )
        stats["count"] += 1
        stats["total_s"] = round(stats["total_s"] + seconds, 6)
        stats["mean_s"] = round(stats["total_s"] / stats["count"], 6)
        previous_min = stats["min_s"]
        stats["min_s"] = round(
            seconds if previous_min is None else min(previous_min, seconds), 6
        )
        stats["max_s"] = round(max(stats["max_s"], seconds), 6)
        stats["last_s"] = round(seconds, 6)
        _REQUEST_SECONDS.observe(seconds, endpoint=path, outcome=outcome)

    # -- observability ------------------------------------------------------

    def _sync_registry(self) -> None:
        """Refresh registry series derived from live service state."""
        _IN_FLIGHT.set(len(self._inflight))

    def metrics(self) -> dict:
        """Request/cache counters, latency aggregates and the registry.

        ``counters``/``latency`` keep their original shapes;
        ``registry`` is the process-wide observability registry — every
        solver/cache/executor series, including telemetry merged back
        from pool workers.  ``GET /metrics`` with an ``Accept`` header
        naming ``text/plain`` (or ``prometheus``/``openmetrics``)
        serves the same registry in Prometheus text exposition format.
        """
        self._sync_registry()
        return {
            "counters": dict(self._counters, in_flight=len(self._inflight)),
            "latency": {path: dict(stats) for path, stats in self._latency.items()},
            "registry": observability.REGISTRY.to_dict(),
        }

    def healthz(self) -> dict:
        """Liveness plus engine/pool observability."""
        executor = self.engine.executor
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "engine": {
                "executor": executor.name,
                "persistent_pool": bool(getattr(executor, "persistent", False)),
                "pool_recycles": getattr(executor, "recycle_count", 0),
                "structure_sharing": self.engine.structure_sharing,
                "cache_info": self.engine.cache_info,
            },
            "max_designs": self.max_designs,
            **self.metrics(),
        }


# -- client -------------------------------------------------------------------


class ServiceClient:
    """Small synchronous client for :class:`EvaluationService`.

    Used by the test-suite, the CI smoke and scripts; any HTTP client
    works — the API is plain JSON over HTTP/1.1.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ):
        """``(status, parsed body)`` of one request (no status check).

        JSON responses are parsed; text responses (e.g. the Prometheus
        exposition negotiated via ``headers={"Accept": "text/plain"}``)
        come back as the raw string.
        """
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload).encode()
            request_headers = dict(headers or {})
            if body:
                request_headers.setdefault("Content-Type", "application/json")
            connection.request(
                method, path, body=body, headers=request_headers
            )
            response = connection.getresponse()
            data = response.read()
            status = response.status
            content_type = response.getheader("Content-Type", "")
        finally:
            connection.close()
        if not content_type.startswith("application/json"):
            return status, data.decode()
        try:
            return status, json.loads(data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EvaluationError(
                f"service returned non-JSON for {path} (HTTP {status}): {exc}"
            ) from exc

    def _checked(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, parsed = self.request(method, path, payload)
        if status != 200:
            detail = parsed.get("error", parsed) if isinstance(parsed, dict) else parsed
            raise EvaluationError(
                f"service {path} request failed (HTTP {status}): {detail}"
            )
        return parsed

    def sweep(self, **fields) -> dict:
        """``POST /sweep`` with *fields* (see the module docstring)."""
        return self._checked("POST", "/sweep", fields)

    def timeline(self, **fields) -> dict:
        """``POST /timeline`` with *fields*."""
        return self._checked("POST", "/timeline", fields)

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``GET /metrics``."""
        status, text = self.request(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        if status != 200 or not isinstance(text, str):
            raise EvaluationError(
                f"Prometheus /metrics request failed (HTTP {status})"
            )
        return text

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.2) -> dict:
        """Poll ``/healthz`` until the service answers (or *timeout*)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (OSError, EvaluationError) as exc:
                if time.monotonic() >= deadline:
                    raise EvaluationError(
                        f"service at {self.host}:{self.port} not ready "
                        f"after {timeout:.0f}s: {exc}"
                    ) from exc
                time.sleep(interval)

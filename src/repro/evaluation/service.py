"""Resident evaluation service: warm :class:`SweepEngine` lanes behind HTTP.

The CLI pays the full start-up bill on every invocation — interpreter,
case-study solves, process-pool spawn, shared-memory priming.  This
module keeps all of that resident: one :class:`EvaluationService` owns
a pool of warm :class:`~repro.evaluation.engine.SweepEngine` *lanes*
(each with its own persistent worker pool, retained shared-memory
segment and caches) and fronts them with a small asyncio HTTP/JSON API
(stdlib only), multiplexing many concurrent sweep/timeline requests
over per-context engines.

/v1 API
-------
The versioned surface is ``POST /v1/sweep``, ``POST /v1/timeline``,
``GET /v1/healthz`` and ``GET /v1/metrics``.  POST bodies use one
canonical envelope::

    {
      "space":   {"roles": [...], "max_replicas": N, "max_total": N|null,
                  "variants": bool, "scaled": "HxT" | [H, T]},
      "options": {"max_designs": N, "shard": {"index": I, "count": C},
                  # timeline only:
                  "horizon": H, "points": P, "times": [...],
                  "campaign": {...}, "phases": "...", "method": "..."},
      "priority": "interactive" | "batch",
      "deadline_ms": N,
      "stream": bool
    }

Every part is optional; defaults match the CLI.  Errors answer with one
stable envelope ``{"error": {"code", "message", "detail"}}`` where
``code`` is machine-readable: ``invalid_request``, ``over_budget``,
``not_found``, ``method_not_allowed``, ``saturated``,
``deadline_exceeded`` or ``internal`` (see
:mod:`repro.evaluation.api`).  Success payloads carry
``schema_version`` 3.

The unversioned paths (``/sweep``, ``/timeline``, ``/healthz``,
``/metrics``) keep working with their historical flat request fields
and flat error bodies, but every response carries a ``Deprecation:
true`` header and increments ``repro_service_legacy_requests_total``.

Engine lanes
------------
Requests are routed to an *engine lane* keyed by evaluation context —
the default case study, a ``scaled`` space, or a campaign fingerprint —
so unrelated workloads never serialise behind one engine.  The pool is
bounded (``lanes``/``--lanes``, default :data:`DEFAULT_LANES`) with LRU
eviction of idle lanes; when every lane is busy and the pool is full,
new contexts park until a lane drains.  ``/healthz`` reports per-lane
telemetry under ``lanes``.

Priorities and streaming
------------------------
``priority: "batch"`` jobs run with a preemption checkpoint injected
into the engine's chunk seams: the moment an interactive job arrives on
the same lane, the batch job aborts at the next chunk boundary (its
completed chunks stay banked in the engine memo), the interactive job
runs, and the batch job resumes — paying only for its remaining
chunks.  ``repro_service_preemptions_total`` counts the occurrences;
per-priority lane waits land in the ``repro_chunk_queue_wait_seconds``
histogram (labels ``queue="lane"``, ``priority=...``).

``stream: true`` (``/v1`` only) switches the response to
newline-delimited JSON (``application/x-ndjson``): a ``start`` event,
one ``chunk`` event per engine chunk as it completes (designs already
memoised/cached are folded into the final payload without a chunk
event), then ``complete`` with the full canonical payload (or
``error``).  Huge spaces start returning in milliseconds::

    curl -N -XPOST localhost:8351/v1/sweep \
      -d '{"space": {"roles": ["dns","web"]}, "stream": true}'

Sharding
--------
``options.shard = {"index": I, "count": C}`` restricts a request to the
designs whose stable hash (``repro.evaluation.api.shard_of``, over
``design.cache_key()``) lands on shard ``I`` of ``C`` — the server-side
half of ``repro shard``, whose coordinator fans a space out across
several service processes and merges the partial payloads
deterministically (see :mod:`repro.evaluation.sharding`).  Services
sharing a sqlite ``--cache`` share results across shards and restarts.

Request semantics
-----------------
* **Budgets.**  Every request's enumerated design count is checked
  against the service budget (``max_designs``, default
  :data:`DEFAULT_MAX_DESIGNS`); a request may lower — never raise — its
  own budget with ``max_designs``.  Over budget is a 400, not a queue
  entry.
* **Dedup.**  Requests are canonicalised (defaults filled, grids
  resolved) and fingerprinted; identical in-flight requests share one
  computation — one engine call, many responders.  Completed responses
  are kept in a small FIFO memory, so repeats are served without
  touching any lane; behind both sit the engines' in-memory memos and
  (when configured) the thread-safe sqlite store of
  :mod:`repro.evaluation.cache`.  Streaming and deadline-bearing
  requests are always computed fresh.
* **Resilience.**  A killed pool worker surfaces as one recycled pool
  (respawn + re-prime + retry under the executor's
  :class:`~repro.resilience.RetryPolicy`) inside the engine, not as a
  failed request; ``pool_recycles`` in ``/healthz`` counts the
  occurrences.  Beyond that:

  * **Deadlines.**  ``deadline_ms`` is a monotonic budget started at
    request receipt (queue wait counts).  An exhausted budget answers a
    504 promptly, even while the underlying computation is still
    finishing on its lane; the engine also checks the budget between
    chunk dispatches and aborts the sweep.
  * **Saturation.**  With ``max_queue`` set, a service whose compute
    queue is full answers 503 with a ``Retry-After`` header instead of
    queueing unboundedly; deduplicated joins onto an in-flight request
    and remembered responses are always served.
  * **Graceful drain.**  SIGTERM (when serving via :meth:`run` on the
    main thread) stops accepting new computations (503), finishes
    in-flight requests up to ``drain_grace`` seconds, then closes the
    lanes, pools and segments cleanly; a second SIGTERM forces an
    immediate stop.
  * **Degraded cache.**  Persistent sqlite-cache contention degrades
    the cache to memory-only (``repro_cache_degraded``) instead of
    failing requests; ``/healthz`` surfaces the flag alongside circuit
    -breaker states under ``resilience``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, InvalidStateError
from functools import partial

from repro import observability
from repro.errors import (
    DeadlineExceeded,
    EvaluationError,
    ReproError,
    ValidationError,
)
from repro.evaluation import api
from repro.evaluation.api import sweep_response, timeline_response
from repro.resilience.breaker import breaker_states
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy

_logger = logging.getLogger(__name__)

#: Structured JSON access log, one line per request.  Silent unless a
#: handler is attached (``repro serve`` attaches one via
#: :func:`configure_access_logs`; embedded/test services stay quiet).
_access_logger = logging.getLogger("repro.serve.access")

_REQUESTS = observability.counter(
    "repro_service_requests_total",
    "HTTP requests dispatched, by endpoint.",
)
_REQUEST_SECONDS = observability.histogram(
    "repro_service_request_seconds",
    "Request handling latency by endpoint and outcome.",
)
_SERVICE_CACHE = observability.counter(
    "repro_service_cache_hits_total",
    "Requests served from the dedup/response fast paths, by tier.",
)
_SERVICE_ERRORS = observability.counter(
    "repro_service_errors_total",
    "Requests that failed (validation or compute).",
).labels()
_SERVICE_COMPUTED = observability.counter(
    "repro_service_computed_total",
    "Requests computed through the engine (not served from caches).",
).labels()
_IN_FLIGHT = observability.gauge(
    "repro_service_in_flight",
    "Deduplicated computations currently in flight.",
).labels()
_SERVICE_REJECTED = observability.counter(
    "repro_service_rejected_total",
    "Requests refused with 503 (queue saturated or draining).",
).labels()
_DRAINING = observability.gauge(
    "repro_service_draining",
    "Whether the service is draining after SIGTERM (1) or serving (0).",
).labels()
_LEGACY = observability.counter(
    "repro_service_legacy_requests_total",
    "Requests to deprecated unversioned paths, by endpoint.",
)
_PREEMPTIONS = observability.counter(
    "repro_service_preemptions_total",
    "Batch jobs preempted at a chunk boundary by an interactive job.",
).labels()
_LANE_EVENTS = observability.counter(
    "repro_service_lane_events_total",
    "Engine-lane pool events (created/evicted/parked).",
)
#: Joins the engine's chunk-wait family: lane queue waits appear next to
#: executor queue waits, split by ``queue``/``priority`` labels.
_LANE_WAIT = observability.histogram(
    "repro_chunk_queue_wait_seconds",
    "Wall-clock wait between chunk dispatch and worker pickup.",
)


def _swallow_abandoned_error(future) -> None:
    """Retrieve an abandoned future's exception so asyncio never warns."""
    if not future.cancelled():
        future.exception()

#: Accept-header fragments that select the Prometheus text exposition
#: for ``GET /metrics`` (JSON stays the default).
_PROMETHEUS_ACCEPT = ("text/plain", "openmetrics", "prometheus")
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def configure_access_logs() -> None:
    """Attach a stderr handler to the access log (idempotent).

    Called by ``repro serve``: every request then emits one structured
    JSON line (time, method, path, status, duration) to stderr, keeping
    stdout for the announce line.  Embedded services skip this and stay
    silent unless the application configures the
    ``repro.serve.access`` logger itself.
    """
    if not _access_logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        _access_logger.addHandler(handler)
        _access_logger.setLevel(logging.INFO)
        _access_logger.propagate = False

__all__ = [
    "DEFAULT_LANES",
    "DEFAULT_MAX_DESIGNS",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_PORT",
    "EngineLane",
    "EvaluationService",
    "LanePool",
    "ServiceClient",
    "sweep_response",
    "timeline_response",
]

#: Default design-count budget per request.
DEFAULT_MAX_DESIGNS = 512

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8351

#: Default bound on concurrently-warm engine lanes.
DEFAULT_LANES = 4

#: Version of the JSON payload schema (shared with the CLI); kept as a
#: module attribute for backward compatibility — the authoritative
#: constant is :data:`repro.evaluation.api.SCHEMA_VERSION`.
TIMELINE_SCHEMA_VERSION = api.SCHEMA_VERSION

#: Completed responses remembered for the fast path (FIFO-bounded; a
#: fallen-out entry recomputes through the engine memo, still cheap).
_MAX_REMEMBERED_RESPONSES = 128

#: Hard cap on request body size (a design-space spec is tiny).
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Default compute-queue bound: distinct computations admitted before
#: the service answers 503 + ``Retry-After`` (dedup joins and response
#: -memory hits are exempt — they add no compute load).
DEFAULT_MAX_QUEUE = 64

_KNOWN_ENDPOINTS = ("/healthz", "/metrics", "/sweep", "/timeline")


def _ndjson(obj) -> bytes:
    """One compact NDJSON line (the streaming wire format)."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


# -- engine lanes -------------------------------------------------------------


class _Preempted(Exception):
    """Internal: a batch job yielded its lane at a chunk boundary."""


#: The engine a lane thread is currently executing against; job bodies
#: (:meth:`EvaluationService._sweep_job`) resolve their engine through
#: this so monkeypatched/legacy job signatures keep working unchanged.
_LANE_ENGINE = threading.local()


def _resolve_future(future: Future, result, exc) -> None:
    """Settle *future*, tolerating a cancellation race (forced stop)."""
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


class EngineLane:
    """One evaluation context's warm engine plus its worker thread.

    Jobs arrive via :meth:`submit` in two priority classes.  The lane
    thread always prefers the interactive queue; a *batch* job runs
    with a ``checkpoint`` callable injected into the engine's chunk
    seams, and the checkpoint raises the moment an interactive job is
    waiting.  The preempted batch job goes back to the *front* of the
    batch queue; when it re-runs, the engine memo already holds every
    chunk completed before the preemption, so only the remaining
    chunks are paid for again.

    Lanes other than the default build their engine lazily *on the
    lane thread* (``engine_factory``) so a cold context never blocks
    the event loop, and close it at retirement; the default lane wraps
    the service's own engine and never closes it.
    """

    def __init__(
        self,
        label: str,
        engine_factory,
        on_idle,
        engine=None,
        owns_engine: bool = True,
    ) -> None:
        self.label = label
        self._engine_factory = engine_factory
        self._engine = engine
        self._owns_engine = owns_engine
        self._on_idle = on_idle
        self._cond = threading.Condition()
        self._interactive: deque = deque()
        self._batch: deque = deque()
        self._busy = False
        self._retired = False
        self.completed = 0
        self.preemptions = 0
        self.last_used = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-lane-{label}", daemon=True
        )
        self._thread.start()

    # -- submission (the pool holds its lock while calling) -----------------

    def submit(self, job, priority: str, future: Future) -> None:
        entry = (job, future, time.monotonic())
        with self._cond:
            if self._retired:
                raise EvaluationError(f"lane {self.label!r} is retired")
            if priority == "batch":
                self._batch.append(entry)
            else:
                self._interactive.append(entry)
            self.last_used = time.monotonic()
            self._cond.notify()

    def idle(self) -> bool:
        with self._cond:
            return not (self._busy or self._interactive or self._batch)

    def retire(self) -> None:
        """Ask the lane to exit once its queues drain (idempotent)."""
        with self._cond:
            self._retired = True
            self._cond.notify()

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout=timeout)

    def describe(self) -> dict:
        """Per-lane ``/healthz`` telemetry."""
        with self._cond:
            info = {
                "context": self.label,
                "busy": self._busy,
                "queued_interactive": len(self._interactive),
                "queued_batch": len(self._batch),
                "completed": self.completed,
                "preemptions": self.preemptions,
                "idle_s": round(time.monotonic() - self.last_used, 3),
            }
        engine = self._engine
        if engine is None:
            info["engine"] = "pending"
        else:
            executor = engine.executor
            info["engine"] = {
                "executor": executor.name,
                "persistent_pool": bool(getattr(executor, "persistent", False)),
                "pool_recycles": getattr(executor, "recycle_count", 0),
                "structure_sharing": engine.structure_sharing,
                "cache_info": engine.cache_info,
                "shared_context": engine.shared_context_info,
            }
        return info

    # -- the lane thread ----------------------------------------------------

    def _checkpoint(self) -> None:
        """Chunk-boundary seam: yield to a waiting interactive job."""
        with self._cond:
            if self._interactive:
                raise _Preempted()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not (self._interactive or self._batch or self._retired):
                    self._cond.wait()
                if self._retired and not (self._interactive or self._batch):
                    break
                if self._interactive:
                    entry, priority = self._interactive.popleft(), "interactive"
                else:
                    entry, priority = self._batch.popleft(), "batch"
                self._busy = True
            job, future, enqueued = entry
            _LANE_WAIT.observe(
                time.monotonic() - enqueued, queue="lane", priority=priority
            )
            preempted = False
            try:
                engine = self._engine
                if engine is None:
                    engine = self._engine = self._engine_factory()
                _LANE_ENGINE.engine = engine
                try:
                    if priority == "batch":
                        result = job(checkpoint=self._checkpoint)
                    else:
                        result = job()
                except _Preempted:
                    preempted = True
                else:
                    self.completed += 1
                    _resolve_future(future, result, None)
            except BaseException as exc:  # noqa: BLE001 — fan out to waiter
                _resolve_future(future, None, exc)
            finally:
                _LANE_ENGINE.engine = None
            with self._cond:
                if preempted:
                    self.preemptions += 1
                    self._batch.appendleft((job, future, enqueued))
                self._busy = False
                self.last_used = time.monotonic()
                drained = not (self._interactive or self._batch)
                retired = self._retired
            if preempted:
                _PREEMPTIONS.inc()
            elif drained and not retired:
                self._on_idle(self)
        if self._owns_engine and self._engine is not None:
            self._engine.close()


class LanePool:
    """LRU-bounded pool of :class:`EngineLane`, keyed by context label.

    ``submit`` routes to the context's lane, creating one (evicting the
    least-recently-used *idle* lane when at capacity) or parking the
    job until any lane drains — parked jobs are the serialisation
    baseline a multi-lane service avoids.  The ``"default"`` label
    wraps the engine passed at construction; it is never closed here.
    """

    def __init__(self, max_lanes: int, default_engine) -> None:
        self.max_lanes = max_lanes
        self._default_engine = default_engine
        self._lock = threading.Lock()
        self._lanes: "OrderedDict[str, EngineLane]" = OrderedDict()
        self._parked: deque = deque()
        self.evictions = 0
        self.parked_total = 0
        self._closed = False
        self._retired: list[EngineLane] = []
        self._create("default", None)

    def submit(self, label: str, factory, job, priority: str) -> Future:
        """Queue *job* on the *label* lane; returns its result future."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise EvaluationError("lane pool is closed")
            lane = self._lanes.get(label)
            if lane is None:
                lane = self._admit(label, factory)
            else:
                self._lanes.move_to_end(label)
            if lane is None:
                self.parked_total += 1
                _LANE_EVENTS.inc(event="parked")
                self._parked.append((label, factory, job, priority, future))
                return future
            lane.submit(job, priority, future)
            return future

    def _admit(self, label: str, factory) -> EngineLane | None:
        """A lane for *label* under the cap, or None (park the job)."""
        if len(self._lanes) < self.max_lanes:
            return self._create(label, factory)
        victim_label = next(
            (
                name
                for name, lane in self._lanes.items()
                if lane.idle()
            ),
            None,
        )
        if victim_label is None:
            return None
        victim = self._lanes.pop(victim_label)
        victim.retire()
        self._retired.append(victim)
        self.evictions += 1
        _LANE_EVENTS.inc(event="evicted")
        return self._create(label, factory)

    def _create(self, label: str, factory) -> EngineLane:
        if label == "default":
            lane = EngineLane(
                label,
                None,
                self._lane_idle,
                engine=self._default_engine,
                owns_engine=False,
            )
        else:
            lane = EngineLane(label, factory, self._lane_idle)
        self._lanes[label] = lane
        _LANE_EVENTS.inc(event="created")
        return lane

    def _lane_idle(self, lane: EngineLane) -> None:
        """A lane drained: hand parked work to it (or a fresh lane)."""
        while True:
            with self._lock:
                if self._closed or not self._parked:
                    return
                label, factory, job, priority, future = self._parked[0]
                target = self._lanes.get(label)
                if target is None:
                    # The idle caller itself is an eviction candidate
                    # here — an idle lane always unparks *something*.
                    target = self._admit(label, factory)
                else:
                    self._lanes.move_to_end(label)
                if target is None:
                    return
                self._parked.popleft()
                target.submit(job, priority, future)

    def describe(self) -> dict:
        with self._lock:
            return {
                "max_lanes": self.max_lanes,
                "active": len(self._lanes),
                "evictions": self.evictions,
                "parked": len(self._parked),
                "parked_total": self.parked_total,
                "lanes": [lane.describe() for lane in self._lanes.values()],
            }

    def close(self, timeout: float | None = None) -> None:
        """Retire every lane, fail parked work, join the threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes.values()) + self._retired
            self._lanes.clear()
            self._retired = []
            parked, self._parked = list(self._parked), deque()
        for entry in parked:
            _resolve_future(
                entry[4],
                None,
                EvaluationError("service closed before the parked request ran"),
            )
        for lane in lanes:
            lane.retire()
        for lane in lanes:
            lane.join(timeout=timeout)


class _StreamPlan:
    """A streaming response handed from ``_dispatch`` to ``_handle``."""

    def __init__(
        self,
        endpoint: str,
        queue: "asyncio.Queue",
        future: "asyncio.Future",
        deadline: Deadline | None,
        started: float,
        design_count: int,
        headers: dict,
    ) -> None:
        self.endpoint = endpoint
        self.queue = queue
        self.future = future
        self.deadline = deadline
        self.started = started
        self.design_count = design_count
        self.headers = headers


# -- the service --------------------------------------------------------------


class EvaluationService:
    """Warm engine lanes behind an asyncio HTTP/JSON API.

    Parameters
    ----------
    case_study / policy:
        Evaluation context of the default lane (defaults: the paper's).
    executor:
        ``"process"`` (default) or ``"thread"`` build *persistent*
        pool executors — the warm pools the service exists for;
        ``"serial"`` runs in-process (useful for tests); an
        :class:`~repro.evaluation.engine.Executor` instance is used
        as-is on the default lane (extra lanes then fall back to
        serial engines).
    max_workers / chunk_size / structure_sharing / cache_path:
        Passed through to every lane engine (``cache_path`` enables the
        thread-safe sqlite result store shared across lanes, restarts
        and shard processes).
    lanes:
        Bound on concurrently-warm engine lanes
        (:data:`DEFAULT_LANES`); least-recently-used idle lanes are
        evicted to admit new contexts.
    max_designs:
        Per-request design-count budget (:data:`DEFAULT_MAX_DESIGNS`).
    max_queue:
        Bound on distinct computations admitted to the compute queue
        (:data:`DEFAULT_MAX_QUEUE`); beyond it new computations get 503
        with ``Retry-After``.  ``None`` queues unboundedly.
    retry_after:
        The ``Retry-After`` hint (seconds) sent with 503 responses.
    drain_grace:
        How long a SIGTERM-initiated drain waits for in-flight requests
        before stopping anyway.
    startup_timeout / shutdown_timeout:
        Bounds on :meth:`start_in_thread` and :meth:`stop`; expiry
        raises a descriptive :class:`~repro.errors.EvaluationError`
        instead of hanging or silently returning.

    Use :meth:`run` to serve blocking (the CLI; SIGTERM drains
    gracefully), or :meth:`start_in_thread`/:meth:`stop` for an
    in-process instance (tests); :meth:`close` releases every lane's
    warm pool, segment and cache.
    """

    def __init__(
        self,
        case_study=None,
        policy=None,
        executor="process",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        structure_sharing: bool = True,
        cache_path=None,
        lanes: int = DEFAULT_LANES,
        max_designs: int = DEFAULT_MAX_DESIGNS,
        max_queue: int | None = DEFAULT_MAX_QUEUE,
        retry_after: float = 1.0,
        drain_grace: float = 30.0,
        startup_timeout: float = 30.0,
        shutdown_timeout: float = 30.0,
    ) -> None:
        from repro._validation import check_positive_int
        from repro.evaluation.engine import (
            ProcessExecutor,
            SweepEngine,
            ThreadExecutor,
        )
        from repro.vulnerability.diversity import diversity_database

        check_positive_int(max_designs, "max_designs")
        self.max_designs = max_designs
        check_positive_int(lanes, "lanes")
        self.max_lanes = lanes
        if max_queue is not None:
            check_positive_int(max_queue, "max_queue")
        self.max_queue = max_queue
        if retry_after <= 0:
            raise EvaluationError(f"retry_after must be > 0, got {retry_after}")
        self.retry_after = retry_after
        for value, name in (
            (drain_grace, "drain_grace"),
            (startup_timeout, "startup_timeout"),
            (shutdown_timeout, "shutdown_timeout"),
        ):
            if value <= 0:
                raise EvaluationError(f"{name} must be > 0, got {value}")
        self.drain_grace = drain_grace
        self.startup_timeout = startup_timeout
        self.shutdown_timeout = shutdown_timeout
        # Captured before the string→executor conversion: extra lanes
        # build their own executors from the same spec (a caller-built
        # Executor instance cannot be duplicated — they get serial).
        self._case_study = case_study
        self._policy = policy
        self._chunk_size = chunk_size
        self._structure_sharing = structure_sharing
        self._cache_path = cache_path
        if isinstance(executor, str):
            self._executor_spec = (executor, max_workers)
        elif getattr(executor, "name", None) in ("process", "thread") and getattr(
            executor, "persistent", False
        ):
            self._executor_spec = (
                executor.name,
                getattr(executor, "max_workers", None),
            )
        else:
            self._executor_spec = ("serial", None)
        if executor == "process":
            executor = ProcessExecutor(max_workers=max_workers, persistent=True)
            max_workers = None
        elif executor == "thread":
            executor = ThreadExecutor(max_workers=max_workers, persistent=True)
            max_workers = None
        # The diversity database serves heterogeneous (variants=true)
        # requests; homogeneous designs never consult it, so results
        # match a database-less CLI engine byte for byte.
        self.engine = SweepEngine(
            case_study=case_study,
            policy=policy,
            executor=executor,
            max_workers=max_workers,
            chunk_size=chunk_size,
            database=diversity_database(),
            structure_sharing=structure_sharing,
            cache_path=cache_path,
        )
        self._lanes = LanePool(lanes, self.engine)
        self._inflight: dict[str, asyncio.Future] = {}
        self._responses: dict[str, dict] = {}
        self._draining = False
        self._active_requests = 0
        #: Open client transports, so a forced stop can sever them
        #: instead of leaving blocked clients to their own timeouts.
        self._connections: set = set()
        #: Monotonic suffix making deadline-bearing and streaming
        #: requests dedup-unique (separate budgets / separate wires
        #: must not share a future).
        self._deadline_serial = 0
        self._counters = {
            "requests_total": 0,
            "dedup_hits": 0,
            "response_cache_hits": 0,
            "computed": 0,
            "errors": 0,
            "rejected": 0,
            "legacy_requests": 0,
        }
        self._latency: dict[str, dict] = {}
        self._started = time.monotonic()
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def run(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        announce: bool = True,
    ) -> None:
        """Serve until interrupted (blocking; the ``repro serve`` body)."""
        configure_access_logs()
        asyncio.run(self._serve(host, port, announce))

    async def _serve(self, host: str, port: int, announce: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            # Graceful drain on SIGTERM.  Only possible when the loop
            # runs on the main thread (the CLI `repro serve` path);
            # start_in_thread services are stopped via stop() instead.
            self._loop.add_signal_handler(signal.SIGTERM, self._begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        server = await asyncio.start_server(self._handle, host, port)
        self.address = server.sockets[0].getsockname()[:2]
        if announce:
            print(
                f"repro serve: http://{self.address[0]}:{self.address[1]} "
                f"(endpoints: POST /v1/sweep, POST /v1/timeline, "
                f"GET /v1/healthz; executor {self.engine.executor.name}, "
                f"{self.max_lanes} lane(s), "
                f"budget {self.max_designs} designs/request)",
                flush=True,
            )
        async with server:
            await self._stop_event.wait()
        # A forced stop can leave handlers mid-request; close their
        # transports so blocked clients see EOF instead of hanging
        # until their own timeout.
        for writer in list(self._connections):
            writer.close()

    def _begin_drain(self) -> None:
        """SIGTERM entry: drain gracefully; a second signal forces stop."""
        if self._stop_event is None:
            return
        if self._draining:
            _logger.info("second SIGTERM: forcing immediate stop")
            self._stop_event.set()
            return
        self._draining = True
        _DRAINING.set(1)
        _logger.info(
            "SIGTERM: draining (%d in flight, %d active request(s), "
            "grace %.0fs)",
            len(self._inflight),
            self._active_requests,
            self.drain_grace,
        )
        assert self._loop is not None
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        """Wait for in-flight work (bounded by ``drain_grace``), then stop."""
        grace_ends = time.monotonic() + self.drain_grace
        while (
            (self._inflight or self._active_requests)
            and time.monotonic() < grace_ends
        ):
            await asyncio.sleep(0.05)
        assert self._stop_event is not None
        self._stop_event.set()

    def start_in_thread(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "ServiceClient":
        """Serve from a daemon thread; returns a ready client.

        ``port=0`` binds an ephemeral port (see :attr:`address`).  Used
        by tests and embedding applications; pair with :meth:`stop`.
        """
        if self._thread is not None:
            raise EvaluationError("service already started")
        started = threading.Event()

        def _target() -> None:
            async def _main() -> None:
                started.set()
                await self._serve(host, port, announce=False)

            asyncio.run(_main())

        self._thread = threading.Thread(
            target=_target, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=self.startup_timeout):
            raise EvaluationError(
                f"service thread did not enter its event loop within "
                f"the startup_timeout of {self.startup_timeout:.1f}s "
                f"(thread alive: {self._thread.is_alive()})"
            )
        # The event fires just before the socket binds; poll readiness.
        bind_deadline = time.monotonic() + self.startup_timeout
        while self.address is None:
            if not self._thread.is_alive():
                raise EvaluationError(
                    f"service thread died before binding {host}:{port} "
                    "(bad address, port in use, or a loop-startup error "
                    "— see the thread's traceback on stderr)"
                )
            if time.monotonic() > bind_deadline:
                raise EvaluationError(
                    f"service did not bind {host}:{port} within the "
                    f"startup_timeout of {self.startup_timeout:.1f}s"
                )
            time.sleep(0.01)
        client = ServiceClient(self.address[0], self.address[1])
        client.wait_until_ready(timeout=self.startup_timeout)
        return client

    def stop(self) -> None:
        """Stop a :meth:`start_in_thread` server (idempotent).

        Raises a descriptive :class:`~repro.errors.EvaluationError` if
        the serving thread is still alive after ``shutdown_timeout``
        seconds (an in-flight request stuck past the bound) — the
        thread is a daemon, so abandoning it cannot hang interpreter
        exit.
        """
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # loop already closed
                pass
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.shutdown_timeout)
            if thread.is_alive():
                raise EvaluationError(
                    f"service thread still serving after the "
                    f"shutdown_timeout of {self.shutdown_timeout:.1f}s "
                    f"({len(self._inflight)} computation(s) in flight, "
                    f"{self._active_requests} active request(s)); "
                    "abandoning the daemon thread"
                )

    def close(self) -> None:
        """Stop serving and release every lane's warm-pool resources."""
        if self._closed:
            return
        self._closed = True
        self.stop()
        self._lanes.close(timeout=self.shutdown_timeout)
        self.engine.close()

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        started = time.perf_counter()
        request = None
        status, payload = 500, {"error": "internal error"}
        extra_headers: dict[str, str] = {}
        self._active_requests += 1
        self._connections.add(writer)
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    status, payload = 400, {"error": "malformed HTTP request"}
                else:
                    result = await self._dispatch(*request)
                    if isinstance(result, _StreamPlan):
                        status = await self._write_stream(writer, result)
                        self._log_access(
                            request, status, time.perf_counter() - started
                        )
                        return
                    # Resilience paths (503/504) attach extra headers as
                    # a third element; plain handlers return pairs.
                    if len(result) == 3:
                        status, payload, extra_headers = result
                    else:
                        status, payload = result
            except (ConnectionError, asyncio.IncompleteReadError):
                writer.close()
                return
            except asyncio.CancelledError:
                # Forced-stop teardown cancelled this handler; end the
                # task quietly (re-raising makes asyncio's stream
                # callback log a spurious traceback at loop close).
                writer.close()
                return
            except Exception as exc:  # never leak a traceback as a hang
                self._counters["errors"] += 1
                _SERVICE_ERRORS.inc()
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            if isinstance(payload, str):
                # Pre-rendered text (the Prometheus exposition).
                body = payload.encode()
                content_type = _PROMETHEUS_CONTENT_TYPE
            else:
                body = (json.dumps(payload, indent=2) + "\n").encode()
                content_type = "application/json"
            header_lines = "".join(
                f"{name}: {value}\r\n" for name, value in extra_headers.items()
            )
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{header_lines}"
                "Connection: close\r\n\r\n"
            ).encode()
            try:
                writer.write(head + body)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # client went away
                pass
            self._log_access(request, status, time.perf_counter() - started)
        finally:
            self._active_requests -= 1
            self._connections.discard(writer)

    @staticmethod
    def _log_access(request, status: int, seconds: float) -> None:
        if not _access_logger.isEnabledFor(logging.INFO):
            return
        method, path = (request[0], request[1]) if request else ("-", "-")
        _access_logger.info(
            json.dumps(
                {
                    "time": time.strftime(
                        "%Y-%m-%dT%H:%M:%S%z", time.localtime()
                    ),
                    "method": method,
                    "path": path,
                    "status": status,
                    "duration_ms": round(seconds * 1000.0, 3),
                },
                sort_keys=True,
            )
        )

    @staticmethod
    async def _read_request(reader):
        """``(method, path, body, headers)`` of one request, else None.

        *headers* maps lower-cased names to values (last wins) — enough
        for content-length framing and ``Accept`` negotiation.
        """
        line = await reader.readline()
        parts = line.decode("latin1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return None
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], body, headers

    # -- dispatch -----------------------------------------------------------

    @staticmethod
    def _error(versioned: bool, code: str, message: str, detail=None) -> dict:
        """An error body: the /v1 envelope or the legacy flat shape."""
        if versioned:
            return api.error_payload(code, message, detail)
        return {"error": message}

    async def _dispatch(
        self, method: str, path: str, body: bytes, headers=None
    ):
        self._counters["requests_total"] += 1
        versioned = path.startswith("/v1/")
        base = path[3:] if versioned else path
        _REQUESTS.inc(endpoint=base if base in _KNOWN_ENDPOINTS else "other")
        extra: dict[str, str] = {}
        if base in _KNOWN_ENDPOINTS and not versioned:
            self._counters["legacy_requests"] += 1
            _LEGACY.inc(endpoint=base)
            extra["Deprecation"] = "true"
        if base in ("/healthz", "/metrics"):
            if method != "GET":
                return 405, self._error(
                    versioned, api.ERROR_METHOD_NOT_ALLOWED, f"{path} is GET-only"
                ), extra
            if base == "/healthz":
                return 200, self.healthz(), extra
            accept = (headers or {}).get("accept", "")
            if any(token in accept for token in _PROMETHEUS_ACCEPT):
                self._sync_registry()
                return 200, observability.REGISTRY.to_prometheus(), extra
            return 200, self.metrics(), extra
        if base not in ("/sweep", "/timeline"):
            return 404, self._error(
                versioned,
                api.ERROR_NOT_FOUND,
                f"unknown path {path!r}; endpoints: POST /v1/sweep, "
                "POST /v1/timeline, GET /v1/healthz, GET /v1/metrics "
                "(unversioned /sweep, /timeline, /healthz, /metrics are "
                "deprecated)",
            ), extra
        if method != "POST":
            return 405, self._error(
                versioned, api.ERROR_METHOD_NOT_ALLOWED, f"{path} is POST-only"
            ), extra
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, self._error(
                versioned, api.ERROR_INVALID_REQUEST, f"invalid JSON body: {exc}"
            ), extra
        if not isinstance(request, dict):
            return 400, self._error(
                versioned,
                api.ERROR_INVALID_REQUEST,
                "request body must be a JSON object",
            ), extra
        start = time.perf_counter()
        try:
            req, key, job, deadline, design_count = self._prepare(
                base, request, versioned
            )
        except ReproError as exc:
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            # Failing requests must stay visible in latency aggregates:
            # record under the errors class before returning.
            self._record_latency(
                base, time.perf_counter() - start, outcome="errors"
            )
            code = (
                api.ERROR_OVER_BUDGET
                if "over the budget" in str(exc)
                else api.ERROR_INVALID_REQUEST
            )
            return 400, self._error(versioned, code, str(exc)), extra
        if req.stream:
            return await self._start_stream(
                base, req, key, job, deadline, design_count, start, extra
            )
        response = self._responses.get(key)
        if response is not None:
            self._counters["response_cache_hits"] += 1
            _SERVICE_CACHE.inc(tier="response")
            self._record_latency(base, time.perf_counter() - start)
            return 200, response, extra
        loop = asyncio.get_running_loop()
        future = self._inflight.get(key)
        if future is not None:
            # Identical request already computing: one computation,
            # many responders.
            self._counters["dedup_hits"] += 1
            _SERVICE_CACHE.inc(tier="dedup")
        else:
            rejected = self._reject_new_computation(base, versioned, start, extra)
            if rejected is not None:
                return rejected
            future = loop.create_future()
            self._inflight[key] = future
            submit = self._lane_submit(req, job)
            loop.create_task(self._compute_job(key, submit, future))
        try:
            if deadline is None:
                response = await future
            else:
                # Shield the computation: a blown budget abandons the
                # wait (prompt 504), never cancels the shared engine
                # work — the memo still banks the eventual result.
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    raise DeadlineExceeded(
                        f"deadline of {deadline.budget * 1000.0:.0f} ms "
                        "exceeded before the request reached the engine"
                    )
                response = await asyncio.wait_for(
                    asyncio.shield(future), timeout=remaining
                )
        except (DeadlineExceeded, asyncio.TimeoutError) as exc:
            future.add_done_callback(_swallow_abandoned_error)
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            self._record_latency(
                base, time.perf_counter() - start, outcome="deadline"
            )
            budget_ms = deadline.budget * 1000.0 if deadline else None
            message = (
                str(exc)
                if isinstance(exc, DeadlineExceeded)
                else f"deadline of {budget_ms:.0f} ms exceeded while the "
                "request was queued or computing"
            )
            if versioned:
                return 504, api.error_payload(
                    api.ERROR_DEADLINE_EXCEEDED,
                    message,
                    {"deadline_ms": budget_ms},
                ), extra
            return 504, {
                "error": message,
                "deadline_ms": budget_ms,
                "deadline_exceeded": True,
            }, extra
        except ReproError as exc:
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            self._record_latency(
                base, time.perf_counter() - start, outcome="errors"
            )
            # An engine-raised ValidationError (e.g. an unknown role
            # name, only detectable at evaluation time) is still the
            # client's mistake, not a server fault.  Worker-crossing
            # wraps erase the type but keep its name in the message.
            if isinstance(exc, ValidationError) or "ValidationError" in str(exc):
                return 400, self._error(
                    versioned, api.ERROR_INVALID_REQUEST, str(exc)
                ), extra
            return 500, self._error(
                versioned, api.ERROR_INTERNAL, str(exc)
            ), extra
        self._record_latency(base, time.perf_counter() - start)
        return 200, response, extra

    def _reject_new_computation(
        self, base: str, versioned: bool, start: float, extra: dict
    ):
        """The 503 response if admission is refused, else None."""
        rejection = self._admission_rejection()
        if rejection is None:
            return None
        self._counters["rejected"] += 1
        _SERVICE_REJECTED.inc()
        self._record_latency(
            base, time.perf_counter() - start, outcome="rejected"
        )
        message = (
            f"service saturated: {rejection}; "
            f"retry after {self.retry_after:g}s"
        )
        retry_extra = dict(extra)
        retry_extra["Retry-After"] = str(max(1, round(self.retry_after)))
        if versioned:
            payload = api.error_payload(
                api.ERROR_SATURATED,
                message,
                {"retry_after_s": self.retry_after, "reason": rejection},
            )
        else:
            payload = {"error": message, "retry_after_s": self.retry_after}
        return 503, payload, retry_extra

    def _admission_rejection(self) -> str | None:
        """Why a *new* computation cannot be admitted now (None = admit)."""
        if self._draining:
            return "draining after SIGTERM, not accepting new computations"
        if self.max_queue is not None and len(self._inflight) >= self.max_queue:
            return (
                f"compute queue full ({len(self._inflight)} computation(s) "
                f"in flight >= max_queue {self.max_queue})"
            )
        return None

    async def _compute_job(
        self, key: str, submit, future: asyncio.Future, remember: bool = True
    ) -> None:
        """Queue the job on its lane; fan the settled result out."""
        try:
            lane_future = submit()
            response = await asyncio.wrap_future(lane_future)
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_exception(exc)
            return
        self._inflight.pop(key, None)
        self._counters["computed"] += 1
        _SERVICE_COMPUTED.inc()
        if remember:
            self._remember(key, response)
        if not future.cancelled():
            future.set_result(response)

    def _lane_submit(self, req, job):
        """A thunk queueing *job* on the request's context lane."""
        return partial(
            self._lanes.submit,
            req.context_label(),
            self._lane_engine_factory(req.space),
            job,
            req.priority,
        )

    def _lane_engine_factory(self, space):
        """A builder for a fresh per-context engine (lane-thread-side)."""
        scaled = space.scaled
        spec, max_workers = self._executor_spec

        def build():
            from repro.evaluation.engine import (
                ProcessExecutor,
                SweepEngine,
                ThreadExecutor,
            )

            if spec == "process":
                executor = ProcessExecutor(
                    max_workers=max_workers, persistent=True
                )
            elif spec == "thread":
                executor = ThreadExecutor(
                    max_workers=max_workers, persistent=True
                )
            else:
                executor = "serial"
            if scaled is not None:
                from repro.enterprise.scaled import scaled_case_study

                case_study, _ = scaled_case_study(*scaled)
                database = None
            else:
                from repro.vulnerability.diversity import diversity_database

                case_study = self._case_study
                database = diversity_database()
            return SweepEngine(
                case_study=case_study,
                policy=self._policy,
                executor=executor,
                chunk_size=self._chunk_size,
                database=database,
                structure_sharing=self._structure_sharing,
                cache_path=self._cache_path,
            )

        return build

    def _prepare(self, base: str, request: dict, versioned: bool):
        """Parsed request, dedup key, compute closure and deadline.

        Raises :class:`~repro.errors.ReproError` on validation
        failures, including a blown design-count budget — checked here,
        before the request can occupy the queue.  The deadline's clock
        starts here, at request receipt: queue wait spends the budget.
        """
        cls = api.TimelineRequest if base == "/timeline" else api.SweepRequest
        req = cls.from_payload(request, legacy=not versioned)
        deadline = (
            None
            if req.deadline_ms is None
            else Deadline.after_ms(req.deadline_ms)
        )
        designs = api.enumerate_space(req.space)
        if req.shard is not None:
            designs = [d for d in designs if req.shard.owns(d)]
        budget = (
            self.max_designs
            if req.max_designs is None
            else min(req.max_designs, self.max_designs)
        )
        if len(designs) > budget:
            raise ValidationError(
                f"request enumerates {len(designs)} designs, over the "
                f"budget of {budget}; shrink the space or raise the "
                "service's --max-designs"
            )
        if req.space.scaled is not None and designs:
            # Scaled spaces answer with the generated tier roles,
            # exactly like `repro sweep --scaled`.
            roles = list(designs[0].roles)
        else:
            roles = list(req.space.roles)
        space = {
            "roles": roles,
            "max_replicas": req.space.max_replicas,
            "max_total": req.space.max_total,
            "variants": req.space.variants,
        }
        if base == "/timeline":
            job = partial(
                self._timeline_job, space, designs, req.times, req.campaign
            )
            if req.method != "uniformisation":
                job = partial(job, method=req.method)
        else:
            job = partial(self._sweep_job, space, designs)
        canonical = req.canonical()
        if deadline is not None:
            # Deadline passed keyword-only so deadline-free jobs keep the
            # historical two/four-argument shape (tests monkeypatch them).
            job = partial(job, deadline=deadline)
            # Each deadline carries its own budget: never share a
            # computation (or a remembered response) across requests.
            self._deadline_serial += 1
            canonical["deadline_serial"] = self._deadline_serial
        if req.stream:
            # A stream is produced incrementally on one wire; never
            # share or remember it.
            self._deadline_serial += 1
            canonical["stream_serial"] = self._deadline_serial
        key = api.canonical_json(canonical)
        return req, key, job, deadline, len(designs)

    # -- streaming ----------------------------------------------------------

    async def _start_stream(
        self, base, req, key, job, deadline, design_count, start, extra
    ):
        """Admit a ``stream: true`` request and hand back its plan."""
        rejected = self._reject_new_computation(base, True, start, extra)
        if rejected is not None:
            return rejected
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        timeline = base == "/timeline"

        def emit_chunk(chunk) -> None:
            records = self._stream_records(chunk, timeline)
            loop.call_soon_threadsafe(queue.put_nowait, ("chunk", records))

        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        submit = self._lane_submit(req, partial(job, progress=emit_chunk))
        loop.create_task(self._compute_job(key, submit, future, remember=False))

        def _finish(fut) -> None:
            if fut.cancelled():
                queue.put_nowait(
                    ("error", EvaluationError("stream computation cancelled"))
                )
            elif fut.exception() is not None:
                queue.put_nowait(("error", fut.exception()))
            else:
                queue.put_nowait(("complete", fut.result()))

        future.add_done_callback(_finish)
        return _StreamPlan(
            endpoint=base,
            queue=queue,
            future=future,
            deadline=deadline,
            started=start,
            design_count=design_count,
            headers=extra,
        )

    @staticmethod
    def _stream_records(chunk, timeline: bool) -> list[dict]:
        """Serialised per-design records of one completed engine chunk."""
        if timeline:
            from repro.evaluation.timeline import timeline_payload

            return [timeline_payload(entry) for entry in chunk]
        from repro.evaluation.report import design_payload

        # Streamed sweep records carry no `pareto` flag — the front is
        # only known once the whole space is in; the `complete` event's
        # payload has it.
        return [design_payload(evaluation, False) for evaluation in chunk]

    async def _write_stream(self, writer, plan: _StreamPlan) -> int:
        """Write the NDJSON event stream; returns the logged status."""
        header_lines = "".join(
            f"{name}: {value}\r\n" for name, value in plan.headers.items()
        )
        outcome = "ok"
        try:
            writer.write(
                (
                    "HTTP/1.1 200 OK\r\n"
                    "Content-Type: application/x-ndjson\r\n"
                    f"{header_lines}"
                    "Connection: close\r\n\r\n"
                ).encode()
            )
            writer.write(
                _ndjson(
                    {
                        "event": "start",
                        "schema_version": api.SCHEMA_VERSION,
                        "endpoint": plan.endpoint,
                        "design_count": plan.design_count,
                    }
                )
            )
            await writer.drain()
            while True:
                if plan.deadline is not None:
                    remaining = plan.deadline.remaining()
                    if remaining <= 0.0:
                        raise asyncio.TimeoutError
                    kind, value = await asyncio.wait_for(
                        plan.queue.get(), timeout=remaining
                    )
                else:
                    kind, value = await plan.queue.get()
                if kind == "chunk":
                    writer.write(_ndjson({"event": "chunk", "designs": value}))
                    await writer.drain()
                    continue
                if kind == "complete":
                    writer.write(
                        _ndjson({"event": "complete", "response": value})
                    )
                else:
                    exc = value
                    outcome = "errors"
                    self._counters["errors"] += 1
                    _SERVICE_ERRORS.inc()
                    if isinstance(exc, DeadlineExceeded):
                        code = api.ERROR_DEADLINE_EXCEEDED
                    elif (
                        isinstance(exc, ValidationError)
                        or "ValidationError" in str(exc)
                    ):
                        code = api.ERROR_INVALID_REQUEST
                    else:
                        code = api.ERROR_INTERNAL
                    writer.write(
                        _ndjson(
                            {
                                "event": "error",
                                "error": api.error_payload(code, str(exc))[
                                    "error"
                                ],
                            }
                        )
                    )
                await writer.drain()
                break
        except asyncio.TimeoutError:
            # The stream is already committed as 200; the deadline
            # surfaces as a final error event instead of a 504 head.
            plan.future.add_done_callback(_swallow_abandoned_error)
            outcome = "deadline"
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            budget_ms = plan.deadline.budget * 1000.0
            try:
                writer.write(
                    _ndjson(
                        {
                            "event": "error",
                            "error": api.error_payload(
                                api.ERROR_DEADLINE_EXCEEDED,
                                f"deadline of {budget_ms:.0f} ms exceeded "
                                "mid-stream",
                                {"deadline_ms": budget_ms},
                            )["error"],
                        }
                    )
                )
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass
        except (ConnectionError, BrokenPipeError):
            # Client went away mid-stream; the lane finishes and banks
            # the result in the memo regardless.
            plan.future.add_done_callback(_swallow_abandoned_error)
            outcome = "aborted"
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
        self._record_latency(
            plan.endpoint, time.perf_counter() - plan.started, outcome=outcome
        )
        return 200

    # The job bodies run on lane threads — the only place engines are
    # ever touched after construction.  They resolve their engine via
    # the lane's thread-local so the historical signatures (which tests
    # monkeypatch) stay intact.

    def _sweep_job(
        self, space: dict, designs, deadline=None, checkpoint=None, progress=None
    ) -> dict:
        engine = getattr(_LANE_ENGINE, "engine", None) or self.engine
        evaluations = engine.evaluate(
            designs, deadline=deadline, checkpoint=checkpoint, progress=progress
        )
        return sweep_response(
            space["roles"],
            space["max_replicas"],
            space["max_total"],
            space["variants"],
            engine.executor.name,
            evaluations,
        )

    def _timeline_job(
        self,
        space: dict,
        designs,
        times,
        campaign,
        method: str = "uniformisation",
        deadline=None,
        checkpoint=None,
        progress=None,
    ) -> dict:
        engine = getattr(_LANE_ENGINE, "engine", None) or self.engine
        timelines = engine.timeline(
            designs,
            times,
            campaign=campaign,
            method=method,
            deadline=deadline,
            checkpoint=checkpoint,
            progress=progress,
        )
        return timeline_response(
            space["roles"],
            space["max_replicas"],
            space["max_total"],
            space["variants"],
            engine.executor.name,
            campaign,
            times,
            timelines,
        )

    def _remember(self, key: str, response: dict) -> None:
        while len(self._responses) >= _MAX_REMEMBERED_RESPONSES:
            self._responses.pop(next(iter(self._responses)))
        self._responses[key] = response

    def _record_latency(
        self, path: str, seconds: float, outcome: str = "ok"
    ) -> None:
        """Fold one request's latency into the per-endpoint aggregates.

        Failing requests land in a separate ``<path>#errors`` class so
        error latencies never skew the healthy aggregates — and are
        never silently dropped.  Versioned and unversioned requests
        share one class per endpoint (the path here is the base path).
        """
        key = path if outcome == "ok" else f"{path}#{outcome}"
        stats = self._latency.setdefault(
            key,
            {
                "count": 0,
                "total_s": 0.0,
                "mean_s": 0.0,
                "min_s": None,
                "max_s": 0.0,
                "last_s": 0.0,
            },
        )
        stats["count"] += 1
        stats["total_s"] = round(stats["total_s"] + seconds, 6)
        stats["mean_s"] = round(stats["total_s"] / stats["count"], 6)
        previous_min = stats["min_s"]
        stats["min_s"] = round(
            seconds if previous_min is None else min(previous_min, seconds), 6
        )
        stats["max_s"] = round(max(stats["max_s"], seconds), 6)
        stats["last_s"] = round(seconds, 6)
        _REQUEST_SECONDS.observe(seconds, endpoint=path, outcome=outcome)

    # -- observability ------------------------------------------------------

    def _sync_registry(self) -> None:
        """Refresh registry series derived from live service state."""
        _IN_FLIGHT.set(len(self._inflight))
        _DRAINING.set(1 if self._draining else 0)

    def metrics(self) -> dict:
        """Request/cache counters, latency aggregates and the registry.

        ``counters``/``latency`` keep their original shapes;
        ``registry`` is the process-wide observability registry — every
        solver/cache/executor series, including telemetry merged back
        from pool workers.  ``GET /metrics`` with an ``Accept`` header
        naming ``text/plain`` (or ``prometheus``/``openmetrics``)
        serves the same registry in Prometheus text exposition format.
        """
        self._sync_registry()
        return {
            "counters": dict(self._counters, in_flight=len(self._inflight)),
            "latency": {path: dict(stats) for path, stats in self._latency.items()},
            "registry": observability.REGISTRY.to_dict(),
        }

    def healthz(self) -> dict:
        """Liveness plus engine/lane/pool observability.

        The ``engine`` section reports the default lane's engine (kept
        for compatibility); ``lanes`` reports the whole pool — bounds,
        evictions, parked jobs and per-lane context/queue/preemption
        telemetry.  The ``resilience`` section reports degradation
        state: drain status, queue occupancy against ``max_queue``,
        whether the persistent cache fell back to memory-only, and
        every registered circuit breaker (name → state/failures/opens).
        """
        executor = self.engine.executor
        cache = self.engine.persistent_cache
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "engine": {
                "executor": executor.name,
                "persistent_pool": bool(getattr(executor, "persistent", False)),
                "pool_recycles": getattr(executor, "recycle_count", 0),
                "structure_sharing": self.engine.structure_sharing,
                "cache_info": self.engine.cache_info,
            },
            "max_designs": self.max_designs,
            "lanes": self._lanes.describe(),
            "resilience": {
                "draining": self._draining,
                "active_requests": self._active_requests,
                "queue_depth": len(self._inflight),
                "max_queue": self.max_queue,
                "drain_grace_s": self.drain_grace,
                "retry_after_s": self.retry_after,
                "cache_degraded": bool(cache.degraded) if cache else False,
                "breakers": breaker_states(),
            },
            **self.metrics(),
        }


# -- client -------------------------------------------------------------------


class ServiceClient:
    """Small synchronous client for :class:`EvaluationService`.

    Used by the test-suite, the CI smoke, the shard coordinator and
    scripts; any HTTP client works — the API is plain JSON over
    HTTP/1.1.  :meth:`sweep`/:meth:`timeline` build the typed ``/v1``
    envelope from keyword arguments; :meth:`request` stays available
    for raw (including legacy unversioned) exchanges.

    Every request sends ``Connection: close`` explicitly — the service
    closes the socket after one exchange, and advertising it keeps a
    client from trying to reuse a drained server's half-open socket.

    A saturated or draining service answers 503 with a ``Retry-After``
    header; the client honours it under *retry* (a bounded
    :class:`~repro.resilience.RetryPolicy`, deterministic backoff) so
    benches and examples survive a briefly-unavailable server.  Pass
    ``retry=None`` to observe 503s directly.
    """

    #: Default 503 handling: three attempts, honouring ``Retry-After``
    #: (capped at ``max_delay``) and falling back to 0.2 s → 0.4 s.
    DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.2, max_delay=5.0)

    _SPACE_FIELDS = ("roles", "max_replicas", "max_total", "variants", "scaled")
    _SWEEP_OPTIONS = ("max_designs", "shard")
    _TIMELINE_OPTIONS = (
        "max_designs",
        "shard",
        "horizon",
        "points",
        "times",
        "campaign",
        "phases",
        "method",
    )
    _TOP_FIELDS = ("priority", "deadline_ms", "stream")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
        retry: RetryPolicy | None = DEFAULT_RETRY,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retry = retry

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ):
        """``(status, parsed body)`` of one request (no status check).

        JSON responses are parsed; text responses (e.g. the Prometheus
        exposition negotiated via ``headers={"Accept": "text/plain"}``)
        come back as the raw string.  503 responses are retried under
        :attr:`retry`; the final attempt's response is returned as-is.
        """
        attempts = self.retry.attempts if self.retry is not None else 1
        for attempt in range(1, attempts + 1):
            status, parsed, retry_after = self._request_once(
                method, path, payload, headers
            )
            if status != 503 or attempt == attempts:
                return status, parsed
            pause = self.retry.delay(attempt)
            if retry_after is not None:
                pause = min(max(retry_after, pause), self.retry.max_delay)
            _logger.debug(
                "service %s answered 503 (attempt %d/%d); retrying in %.2fs",
                path,
                attempt,
                attempts,
                pause,
            )
            if pause > 0.0:
                time.sleep(pause)
        raise AssertionError("unreachable retry state")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None,
        headers: dict | None,
    ):
        """One HTTP exchange: ``(status, parsed body, retry_after)``."""
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload).encode()
            request_headers = dict(headers or {})
            if body:
                request_headers.setdefault("Content-Type", "application/json")
            # One exchange per connection, stated on the wire: the
            # service always closes, and an explicit header keeps any
            # client stack from trying to reuse a dying socket.
            request_headers.setdefault("Connection", "close")
            connection.request(
                method, path, body=body, headers=request_headers
            )
            response = connection.getresponse()
            data = response.read()
            status = response.status
            content_type = response.getheader("Content-Type", "")
            retry_after_header = response.getheader("Retry-After")
        finally:
            connection.close()
        retry_after = None
        if retry_after_header is not None:
            try:
                retry_after = float(retry_after_header)
            except ValueError:
                pass
        if not content_type.startswith("application/json"):
            return status, data.decode(), retry_after
        try:
            return status, json.loads(data.decode()), retry_after
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EvaluationError(
                f"service returned non-JSON for {path} (HTTP {status}): {exc}"
            ) from exc

    def _checked(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, parsed = self.request(method, path, payload)
        if status != 200:
            detail = parsed.get("error", parsed) if isinstance(parsed, dict) else parsed
            raise EvaluationError(
                f"service {path} request failed (HTTP {status}): {detail}"
            )
        return parsed

    def _envelope(self, fields: dict, timeline: bool) -> dict:
        """The /v1 request envelope built from flat keyword arguments."""
        option_names = self._TIMELINE_OPTIONS if timeline else self._SWEEP_OPTIONS
        allowed = (
            set(self._SPACE_FIELDS) | set(option_names) | set(self._TOP_FIELDS)
        )
        unknown = sorted(set(fields) - allowed)
        if unknown:
            endpoint = "timeline" if timeline else "sweep"
            raise ValidationError(
                f"unknown {endpoint} field(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        payload: dict = {}
        space = {k: fields[k] for k in self._SPACE_FIELDS if k in fields}
        options = {k: fields[k] for k in option_names if k in fields}
        if space:
            payload["space"] = space
        if options:
            payload["options"] = options
        for k in self._TOP_FIELDS:
            if k in fields:
                payload[k] = fields[k]
        return payload

    def sweep(self, **fields) -> dict:
        """``POST /v1/sweep`` built from flat keyword arguments."""
        return self._checked(
            "POST", "/v1/sweep", self._envelope(fields, timeline=False)
        )

    def timeline(self, **fields) -> dict:
        """``POST /v1/timeline`` built from flat keyword arguments."""
        return self._checked(
            "POST", "/v1/timeline", self._envelope(fields, timeline=True)
        )

    def sweep_stream(self, **fields):
        """Iterate ``POST /v1/sweep`` NDJSON events (``stream: true``)."""
        fields["stream"] = True
        return self._stream("/v1/sweep", self._envelope(fields, timeline=False))

    def timeline_stream(self, **fields):
        """Iterate ``POST /v1/timeline`` NDJSON events."""
        fields["stream"] = True
        return self._stream(
            "/v1/timeline", self._envelope(fields, timeline=True)
        )

    def _stream(self, path: str, payload: dict):
        """Yield parsed events from one streaming exchange."""
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST",
                path,
                body=json.dumps(payload).encode(),
                headers={
                    "Content-Type": "application/json",
                    "Connection": "close",
                },
            )
            response = connection.getresponse()
            if response.status != 200:
                data = response.read().decode()
                try:
                    parsed = json.loads(data)
                except json.JSONDecodeError:
                    parsed = data
                detail = (
                    parsed.get("error", parsed)
                    if isinstance(parsed, dict)
                    else parsed
                )
                raise EvaluationError(
                    f"service {path} stream failed "
                    f"(HTTP {response.status}): {detail}"
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            connection.close()

    def healthz(self) -> dict:
        return self._checked("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/v1/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``GET /metrics``."""
        status, text = self.request(
            "GET", "/v1/metrics", headers={"Accept": "text/plain"}
        )
        if status != 200 or not isinstance(text, str):
            raise EvaluationError(
                f"Prometheus /metrics request failed (HTTP {status})"
            )
        return text

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.2) -> dict:
        """Poll ``/healthz`` until the service answers (or *timeout*)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (OSError, EvaluationError) as exc:
                if time.monotonic() >= deadline:
                    raise EvaluationError(
                        f"service at {self.host}:{self.port} not ready "
                        f"after {timeout:.0f}s: {exc}"
                    ) from exc
                time.sleep(interval)

"""Resident evaluation service: a warm :class:`SweepEngine` behind HTTP.

The CLI pays the full start-up bill on every invocation — interpreter,
case-study solves, process-pool spawn, shared-memory priming.  This
module keeps all of that resident: one :class:`EvaluationService` owns
one warm :class:`~repro.evaluation.engine.SweepEngine` (persistent
worker pool, retained shared-memory segment, in-memory and optional
sqlite result caches) and fronts it with a small asyncio HTTP/JSON API
(stdlib only), multiplexing many concurrent sweep/timeline requests
over the single engine.

Endpoints
---------
``POST /sweep``
    Body ``{"roles": [...], "max_replicas": N, "max_total": N|null,
    "variants": bool, "max_designs": N}`` (all optional; defaults match
    the CLI).  Responds with exactly the payload ``repro sweep --json``
    prints (modulo the ``executor`` field naming the service's
    executor) — both go through :func:`sweep_response`.
``POST /timeline``
    The sweep fields plus ``{"horizon": H, "points": P}`` or an
    explicit ``"times": [...]``, and optionally a staged rollout as
    ``"campaign": {...}`` (JSON spec) or ``"phases": "name:mult[:trig
    [:canary]],..."`` shorthand (mutually exclusive).  Responds with
    the ``repro timeline --json`` payload (:func:`timeline_response`).
``GET /healthz``
    Liveness plus observability: uptime, engine/pool state (executor,
    structure sharing, pool recycles, cache hit counters) and the
    per-endpoint request/latency/cache counters.
``GET /metrics``
    Just the counters and latency aggregates.

Request semantics
-----------------
* **Queueing.**  All engine work runs on one dedicated compute thread
  (the engine is not thread-safe); requests queue FIFO behind it while
  the asyncio loop keeps accepting connections and serving
  ``/healthz``.
* **Budgets.**  Every request's enumerated design count is checked
  against the service budget (``max_designs``, default
  :data:`DEFAULT_MAX_DESIGNS`); a request may lower — never raise — its
  own budget with a ``max_designs`` field.  Over budget is a 400, not a
  queue entry.
* **Dedup.**  Requests are canonicalised (defaults filled, grids
  resolved) and fingerprinted; identical in-flight requests share one
  computation — one engine call, many responders.  Completed responses
  are kept in a small FIFO memory, so repeats are served without
  touching the compute queue at all; behind both sits the engine's
  in-memory memo and (when configured) the thread-safe sqlite store of
  :mod:`repro.evaluation.cache`.
* **Resilience.**  A killed pool worker surfaces as one recycled pool
  (respawn + re-prime + retry under the executor's
  :class:`~repro.resilience.RetryPolicy`) inside the engine, not as a
  failed request; ``pool_recycles`` in ``/healthz`` counts the
  occurrences.  Beyond that:

  * **Deadlines.**  ``/sweep`` and ``/timeline`` accept ``deadline_ms``
    — a monotonic budget started at request receipt (queue wait
    counts).  An exhausted budget answers a 504-style JSON error
    promptly, even while the underlying computation is still finishing
    on the compute thread; the engine also checks the budget between
    chunk dispatches and aborts the sweep.
  * **Saturation.**  With ``max_queue`` set, a service whose compute
    queue is full answers 503 with a ``Retry-After`` header instead of
    queueing unboundedly; deduplicated joins onto an in-flight request
    and remembered responses are always served.
  * **Graceful drain.**  SIGTERM (when serving via :meth:`run` on the
    main thread) stops accepting new computations (503), finishes
    in-flight requests up to ``drain_grace`` seconds, then closes the
    engine, pool and segment cleanly; a second SIGTERM forces an
    immediate stop.
  * **Degraded cache.**  Persistent sqlite-cache contention degrades
    the cache to memory-only (``repro_cache_degraded``) instead of
    failing requests; ``/healthz`` surfaces the flag alongside circuit
    -breaker states under ``resilience``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from repro import observability
from repro.errors import (
    DeadlineExceeded,
    EvaluationError,
    ReproError,
    ValidationError,
)
from repro.resilience.breaker import breaker_states
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy

_logger = logging.getLogger(__name__)

#: Structured JSON access log, one line per request.  Silent unless a
#: handler is attached (``repro serve`` attaches one via
#: :func:`configure_access_logs`; embedded/test services stay quiet).
_access_logger = logging.getLogger("repro.serve.access")

_REQUESTS = observability.counter(
    "repro_service_requests_total",
    "HTTP requests dispatched, by endpoint.",
)
_REQUEST_SECONDS = observability.histogram(
    "repro_service_request_seconds",
    "Request handling latency by endpoint and outcome.",
)
_SERVICE_CACHE = observability.counter(
    "repro_service_cache_hits_total",
    "Requests served from the dedup/response fast paths, by tier.",
)
_SERVICE_ERRORS = observability.counter(
    "repro_service_errors_total",
    "Requests that failed (validation or compute).",
).labels()
_SERVICE_COMPUTED = observability.counter(
    "repro_service_computed_total",
    "Requests computed through the engine (not served from caches).",
).labels()
_IN_FLIGHT = observability.gauge(
    "repro_service_in_flight",
    "Deduplicated computations currently in flight.",
).labels()
_SERVICE_REJECTED = observability.counter(
    "repro_service_rejected_total",
    "Requests refused with 503 (queue saturated or draining).",
).labels()
_DRAINING = observability.gauge(
    "repro_service_draining",
    "Whether the service is draining after SIGTERM (1) or serving (0).",
).labels()


def _swallow_abandoned_error(future) -> None:
    """Retrieve an abandoned future's exception so asyncio never warns."""
    if not future.cancelled():
        future.exception()

#: Accept-header fragments that select the Prometheus text exposition
#: for ``GET /metrics`` (JSON stays the default).
_PROMETHEUS_ACCEPT = ("text/plain", "openmetrics", "prometheus")
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def configure_access_logs() -> None:
    """Attach a stderr handler to the access log (idempotent).

    Called by ``repro serve``: every request then emits one structured
    JSON line (time, method, path, status, duration) to stderr, keeping
    stdout for the announce line.  Embedded services skip this and stay
    silent unless the application configures the
    ``repro.serve.access`` logger itself.
    """
    if not _access_logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        _access_logger.addHandler(handler)
        _access_logger.setLevel(logging.INFO)
        _access_logger.propagate = False

__all__ = [
    "DEFAULT_MAX_DESIGNS",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_PORT",
    "EvaluationService",
    "ServiceClient",
    "sweep_response",
    "timeline_response",
]

#: Default design-count budget per request.
DEFAULT_MAX_DESIGNS = 512

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8351

#: Version of the ``timeline`` JSON schema (shared with the CLI).
#: Version 2 added ``schema_version`` itself plus the campaign metadata
#: (top-level ``campaign``, per-design ``phase_starts``); consumers
#: should treat a payload without the field as version 1.
TIMELINE_SCHEMA_VERSION = 2

#: Completed responses remembered for the fast path (FIFO-bounded; a
#: fallen-out entry recomputes through the engine memo, still cheap).
_MAX_REMEMBERED_RESPONSES = 128

#: Hard cap on request body size (a design-space spec is tiny).
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Default compute-queue bound: distinct computations admitted before
#: the service answers 503 + ``Retry-After`` (dedup joins and response
#: -memory hits are exempt — they add no compute load).
DEFAULT_MAX_QUEUE = 64


# -- response envelopes (shared with the CLI) ---------------------------------


def sweep_response(
    roles: Sequence[str],
    max_replicas: int,
    max_total: int | None,
    variants: bool,
    executor_name: str,
    evaluations,
) -> dict:
    """The canonical ``sweep`` JSON payload (CLI and service)."""
    from repro.evaluation.report import design_payload
    from repro.evaluation.sweep import pareto_front

    front = {id(e) for e in pareto_front(evaluations, after_patch=True)}
    return {
        "roles": list(roles),
        "max_replicas": max_replicas,
        "max_total": max_total,
        "variants": bool(variants),
        "executor": executor_name,
        "design_count": len(evaluations),
        "designs": [
            design_payload(evaluation, id(evaluation) in front)
            for evaluation in evaluations
        ],
    }


def timeline_response(
    roles: Sequence[str],
    max_replicas: int,
    max_total: int | None,
    variants: bool,
    executor_name: str,
    campaign,
    times: Sequence[float],
    timelines,
) -> dict:
    """The canonical ``timeline`` JSON payload (CLI and service)."""
    from repro.evaluation.timeline import timeline_payload

    return {
        "schema_version": TIMELINE_SCHEMA_VERSION,
        "roles": list(roles),
        "max_replicas": max_replicas,
        "max_total": max_total,
        "variants": bool(variants),
        "executor": executor_name,
        "campaign": campaign.to_dict() if campaign is not None else None,
        "times": list(times),
        "design_count": len(timelines),
        "designs": [timeline_payload(timeline) for timeline in timelines],
    }


# -- request normalisation ----------------------------------------------------

_SPACE_FIELDS = {
    "roles",
    "max_replicas",
    "max_total",
    "variants",
    "max_designs",
    "deadline_ms",
}
_TIMELINE_FIELDS = _SPACE_FIELDS | {
    "horizon",
    "points",
    "times",
    "campaign",
    "phases",
}


def _require_fields(payload: dict, allowed: set, endpoint: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValidationError(
            f"unknown {endpoint} request field(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


def _parse_roles(value: object) -> list[str]:
    if value is None:
        value = ["dns", "web", "app", "db"]
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",")]
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(role, str) for role in value
    ):
        raise ValidationError(
            "roles must be a list of role names (or one comma-separated string)"
        )
    roles = list(dict.fromkeys(role for role in value if role))
    if not roles:
        raise ValidationError("no roles given")
    return roles


def _parse_count(value: object, name: str, default: int | None) -> int | None:
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return value


def _normalize_space(payload: dict) -> dict:
    """Fill defaults and validate the design-space half of a request."""
    return {
        "roles": _parse_roles(payload.get("roles")),
        "max_replicas": _parse_count(payload.get("max_replicas"), "max_replicas", 2),
        "max_total": _parse_count(payload.get("max_total"), "max_total", None),
        "variants": bool(payload.get("variants", False)),
    }


def _parse_times(payload: dict) -> tuple[float, ...]:
    """The resolved time grid of a timeline request."""
    from repro.evaluation.timeline import default_time_grid

    times = payload.get("times")
    if times is not None:
        if not isinstance(times, (list, tuple)) or not times:
            raise ValidationError("times must be a non-empty list of hours")
        try:
            return tuple(float(t) for t in times)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"bad time grid: {exc}") from exc
    horizon = payload.get("horizon", 720.0)
    points = payload.get("points", 24)
    if not isinstance(horizon, (int, float)) or isinstance(horizon, bool):
        raise ValidationError(f"horizon must be a number, got {horizon!r}")
    if isinstance(points, bool) or not isinstance(points, int):
        raise ValidationError(f"points must be an integer, got {points!r}")
    return default_time_grid(float(horizon), points)


def _parse_deadline_ms(value: object) -> float | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ValidationError(
            f"deadline_ms must be a positive number of milliseconds, got {value!r}"
        )
    return float(value)


def _parse_campaign(payload: dict):
    """The request's staged rollout (``campaign`` spec or ``phases``)."""
    from repro.patching.campaign import PatchCampaign

    campaign, phases = payload.get("campaign"), payload.get("phases")
    if campaign is not None and phases is not None:
        raise ValidationError("campaign and phases are mutually exclusive")
    if campaign is not None:
        return PatchCampaign.from_dict(campaign)
    if phases is not None:
        if not isinstance(phases, str):
            raise ValidationError(
                "phases must be a shorthand string like 'canary:0.1:48,fleet:1.0'"
            )
        return PatchCampaign.parse(phases)
    return None


# -- the service --------------------------------------------------------------


class EvaluationService:
    """One warm sweep engine behind an asyncio HTTP/JSON API.

    Parameters
    ----------
    case_study / policy:
        Evaluation context (defaults: the paper's).
    executor:
        ``"process"`` (default) or ``"thread"`` build a *persistent*
        pool executor — the warm pool the service exists for;
        ``"serial"`` runs in-process (useful for tests); an
        :class:`~repro.evaluation.engine.Executor` instance is used
        as-is.
    max_workers / chunk_size / structure_sharing / cache_path:
        Passed through to the engine (``cache_path`` enables the
        thread-safe sqlite result store shared across restarts).
    max_designs:
        Per-request design-count budget (:data:`DEFAULT_MAX_DESIGNS`).
    max_queue:
        Bound on distinct computations admitted to the compute queue
        (:data:`DEFAULT_MAX_QUEUE`); beyond it new computations get 503
        with ``Retry-After``.  ``None`` queues unboundedly.
    retry_after:
        The ``Retry-After`` hint (seconds) sent with 503 responses.
    drain_grace:
        How long a SIGTERM-initiated drain waits for in-flight requests
        before stopping anyway.
    startup_timeout / shutdown_timeout:
        Bounds on :meth:`start_in_thread` and :meth:`stop`; expiry
        raises a descriptive :class:`~repro.errors.EvaluationError`
        instead of hanging or silently returning.

    Use :meth:`run` to serve blocking (the CLI; SIGTERM drains
    gracefully), or :meth:`start_in_thread`/:meth:`stop` for an
    in-process instance (tests); :meth:`close` releases the engine's
    warm pool, segment and cache.
    """

    def __init__(
        self,
        case_study=None,
        policy=None,
        executor="process",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        structure_sharing: bool = True,
        cache_path=None,
        max_designs: int = DEFAULT_MAX_DESIGNS,
        max_queue: int | None = DEFAULT_MAX_QUEUE,
        retry_after: float = 1.0,
        drain_grace: float = 30.0,
        startup_timeout: float = 30.0,
        shutdown_timeout: float = 30.0,
    ) -> None:
        from repro._validation import check_positive_int
        from repro.evaluation.engine import (
            ProcessExecutor,
            SweepEngine,
            ThreadExecutor,
        )
        from repro.vulnerability.diversity import diversity_database

        check_positive_int(max_designs, "max_designs")
        self.max_designs = max_designs
        if max_queue is not None:
            check_positive_int(max_queue, "max_queue")
        self.max_queue = max_queue
        if retry_after <= 0:
            raise EvaluationError(f"retry_after must be > 0, got {retry_after}")
        self.retry_after = retry_after
        for value, name in (
            (drain_grace, "drain_grace"),
            (startup_timeout, "startup_timeout"),
            (shutdown_timeout, "shutdown_timeout"),
        ):
            if value <= 0:
                raise EvaluationError(f"{name} must be > 0, got {value}")
        self.drain_grace = drain_grace
        self.startup_timeout = startup_timeout
        self.shutdown_timeout = shutdown_timeout
        if executor == "process":
            executor = ProcessExecutor(max_workers=max_workers, persistent=True)
            max_workers = None
        elif executor == "thread":
            executor = ThreadExecutor(max_workers=max_workers, persistent=True)
            max_workers = None
        # The diversity database serves heterogeneous (variants=true)
        # requests; homogeneous designs never consult it, so results
        # match a database-less CLI engine byte for byte.
        self.engine = SweepEngine(
            case_study=case_study,
            policy=policy,
            executor=executor,
            max_workers=max_workers,
            chunk_size=chunk_size,
            database=diversity_database(),
            structure_sharing=structure_sharing,
            cache_path=cache_path,
        )
        # One compute thread: the engine is single-threaded by design,
        # and the thread's FIFO work queue is the request queue.
        self._compute = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-compute"
        )
        self._inflight: dict[str, asyncio.Future] = {}
        self._responses: dict[str, dict] = {}
        self._draining = False
        self._active_requests = 0
        #: Open client transports, so a forced stop can sever them
        #: instead of leaving blocked clients to their own timeouts.
        self._connections: set = set()
        #: Monotonic suffix making deadline-bearing requests dedup-unique
        #: (two requests with separate budgets must not share a future).
        self._deadline_serial = 0
        self._counters = {
            "requests_total": 0,
            "dedup_hits": 0,
            "response_cache_hits": 0,
            "computed": 0,
            "errors": 0,
            "rejected": 0,
        }
        self._latency: dict[str, dict] = {}
        self._started = time.monotonic()
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def run(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        announce: bool = True,
    ) -> None:
        """Serve until interrupted (blocking; the ``repro serve`` body)."""
        configure_access_logs()
        asyncio.run(self._serve(host, port, announce))

    async def _serve(self, host: str, port: int, announce: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            # Graceful drain on SIGTERM.  Only possible when the loop
            # runs on the main thread (the CLI `repro serve` path);
            # start_in_thread services are stopped via stop() instead.
            self._loop.add_signal_handler(signal.SIGTERM, self._begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        server = await asyncio.start_server(self._handle, host, port)
        self.address = server.sockets[0].getsockname()[:2]
        if announce:
            print(
                f"repro serve: http://{self.address[0]}:{self.address[1]} "
                f"(endpoints: POST /sweep, POST /timeline, GET /healthz; "
                f"executor {self.engine.executor.name}, "
                f"budget {self.max_designs} designs/request)",
                flush=True,
            )
        async with server:
            await self._stop_event.wait()
        # A forced stop can leave handlers mid-request; close their
        # transports so blocked clients see EOF instead of hanging
        # until their own timeout.
        for writer in list(self._connections):
            writer.close()

    def _begin_drain(self) -> None:
        """SIGTERM entry: drain gracefully; a second signal forces stop."""
        if self._stop_event is None:
            return
        if self._draining:
            _logger.info("second SIGTERM: forcing immediate stop")
            self._stop_event.set()
            return
        self._draining = True
        _DRAINING.set(1)
        _logger.info(
            "SIGTERM: draining (%d in flight, %d active request(s), "
            "grace %.0fs)",
            len(self._inflight),
            self._active_requests,
            self.drain_grace,
        )
        assert self._loop is not None
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        """Wait for in-flight work (bounded by ``drain_grace``), then stop."""
        grace_ends = time.monotonic() + self.drain_grace
        while (
            (self._inflight or self._active_requests)
            and time.monotonic() < grace_ends
        ):
            await asyncio.sleep(0.05)
        assert self._stop_event is not None
        self._stop_event.set()

    def start_in_thread(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "ServiceClient":
        """Serve from a daemon thread; returns a ready client.

        ``port=0`` binds an ephemeral port (see :attr:`address`).  Used
        by tests and embedding applications; pair with :meth:`stop`.
        """
        if self._thread is not None:
            raise EvaluationError("service already started")
        started = threading.Event()

        def _target() -> None:
            async def _main() -> None:
                started.set()
                await self._serve(host, port, announce=False)

            asyncio.run(_main())

        self._thread = threading.Thread(
            target=_target, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=self.startup_timeout):
            raise EvaluationError(
                f"service thread did not enter its event loop within "
                f"the startup_timeout of {self.startup_timeout:.1f}s "
                f"(thread alive: {self._thread.is_alive()})"
            )
        # The event fires just before the socket binds; poll readiness.
        bind_deadline = time.monotonic() + self.startup_timeout
        while self.address is None:
            if not self._thread.is_alive():
                raise EvaluationError(
                    f"service thread died before binding {host}:{port} "
                    "(bad address, port in use, or a loop-startup error "
                    "— see the thread's traceback on stderr)"
                )
            if time.monotonic() > bind_deadline:
                raise EvaluationError(
                    f"service did not bind {host}:{port} within the "
                    f"startup_timeout of {self.startup_timeout:.1f}s"
                )
            time.sleep(0.01)
        client = ServiceClient(self.address[0], self.address[1])
        client.wait_until_ready(timeout=self.startup_timeout)
        return client

    def stop(self) -> None:
        """Stop a :meth:`start_in_thread` server (idempotent).

        Raises a descriptive :class:`~repro.errors.EvaluationError` if
        the serving thread is still alive after ``shutdown_timeout``
        seconds (an in-flight request stuck past the bound) — the
        thread is a daemon, so abandoning it cannot hang interpreter
        exit.
        """
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # loop already closed
                pass
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.shutdown_timeout)
            if thread.is_alive():
                raise EvaluationError(
                    f"service thread still serving after the "
                    f"shutdown_timeout of {self.shutdown_timeout:.1f}s "
                    f"({len(self._inflight)} computation(s) in flight, "
                    f"{self._active_requests} active request(s)); "
                    "abandoning the daemon thread"
                )

    def close(self) -> None:
        """Stop serving and release the engine's warm-pool resources."""
        if self._closed:
            return
        self._closed = True
        self.stop()
        self._compute.shutdown(wait=True, cancel_futures=True)
        self.engine.close()

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        started = time.perf_counter()
        request = None
        status, payload = 500, {"error": "internal error"}
        extra_headers: dict[str, str] = {}
        self._active_requests += 1
        self._connections.add(writer)
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    status, payload = 400, {"error": "malformed HTTP request"}
                else:
                    result = await self._dispatch(*request)
                    # Resilience paths (503/504) attach extra headers as
                    # a third element; plain handlers return pairs.
                    if len(result) == 3:
                        status, payload, extra_headers = result
                    else:
                        status, payload = result
            except (ConnectionError, asyncio.IncompleteReadError):
                writer.close()
                return
            except asyncio.CancelledError:
                # Forced-stop teardown cancelled this handler; end the
                # task quietly (re-raising makes asyncio's stream
                # callback log a spurious traceback at loop close).
                writer.close()
                return
            except Exception as exc:  # never leak a traceback as a hang
                self._counters["errors"] += 1
                _SERVICE_ERRORS.inc()
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            if isinstance(payload, str):
                # Pre-rendered text (the Prometheus exposition).
                body = payload.encode()
                content_type = _PROMETHEUS_CONTENT_TYPE
            else:
                body = (json.dumps(payload, indent=2) + "\n").encode()
                content_type = "application/json"
            header_lines = "".join(
                f"{name}: {value}\r\n" for name, value in extra_headers.items()
            )
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{header_lines}"
                "Connection: close\r\n\r\n"
            ).encode()
            try:
                writer.write(head + body)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # client went away
                pass
            self._log_access(request, status, time.perf_counter() - started)
        finally:
            self._active_requests -= 1
            self._connections.discard(writer)

    @staticmethod
    def _log_access(request, status: int, seconds: float) -> None:
        if not _access_logger.isEnabledFor(logging.INFO):
            return
        method, path = (request[0], request[1]) if request else ("-", "-")
        _access_logger.info(
            json.dumps(
                {
                    "time": time.strftime(
                        "%Y-%m-%dT%H:%M:%S%z", time.localtime()
                    ),
                    "method": method,
                    "path": path,
                    "status": status,
                    "duration_ms": round(seconds * 1000.0, 3),
                },
                sort_keys=True,
            )
        )

    @staticmethod
    async def _read_request(reader):
        """``(method, path, body, headers)`` of one request, else None.

        *headers* maps lower-cased names to values (last wins) — enough
        for content-length framing and ``Accept`` negotiation.
        """
        line = await reader.readline()
        parts = line.decode("latin1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return None
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], body, headers

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes, headers=None
    ):
        self._counters["requests_total"] += 1
        known = ("/healthz", "/metrics", "/sweep", "/timeline")
        _REQUESTS.inc(endpoint=path if path in known else "other")
        if path in ("/healthz", "/metrics"):
            if method != "GET":
                return 405, {"error": f"{path} is GET-only"}
            if path == "/healthz":
                return 200, self.healthz()
            accept = (headers or {}).get("accept", "")
            if any(token in accept for token in _PROMETHEUS_ACCEPT):
                self._sync_registry()
                return 200, observability.REGISTRY.to_prometheus()
            return 200, self.metrics()
        if path not in ("/sweep", "/timeline"):
            return 404, {
                "error": f"unknown path {path!r}; "
                "endpoints: POST /sweep, POST /timeline, GET /healthz, GET /metrics"
            }
        if method != "POST":
            return 405, {"error": f"{path} is POST-only"}
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(request, dict):
            return 400, {"error": "request body must be a JSON object"}
        start = time.perf_counter()
        try:
            key, job, deadline = self._prepare(path, request)
        except ReproError as exc:
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            # Failing requests must stay visible in latency aggregates:
            # record under the errors class before returning.
            self._record_latency(
                path, time.perf_counter() - start, outcome="errors"
            )
            return 400, {"error": str(exc)}
        response = self._responses.get(key)
        if response is not None:
            self._counters["response_cache_hits"] += 1
            _SERVICE_CACHE.inc(tier="response")
            self._record_latency(path, time.perf_counter() - start)
            return 200, response
        loop = asyncio.get_running_loop()
        future = self._inflight.get(key)
        if future is not None:
            # Identical request already computing: one computation,
            # many responders.
            self._counters["dedup_hits"] += 1
            _SERVICE_CACHE.inc(tier="dedup")
        else:
            rejection = self._admission_rejection()
            if rejection is not None:
                self._counters["rejected"] += 1
                _SERVICE_REJECTED.inc()
                self._record_latency(
                    path, time.perf_counter() - start, outcome="rejected"
                )
                return 503, {
                    "error": f"service saturated: {rejection}; "
                    f"retry after {self.retry_after:g}s",
                    "retry_after_s": self.retry_after,
                }, {"Retry-After": str(max(1, round(self.retry_after)))}
            future = loop.create_future()
            self._inflight[key] = future
            loop.create_task(self._compute_job(key, job, future))
        try:
            if deadline is None:
                response = await future
            else:
                # Shield the computation: a blown budget abandons the
                # wait (prompt 504), never cancels the shared engine
                # work — the memo still banks the eventual result.
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    raise DeadlineExceeded(
                        f"deadline of {deadline.budget * 1000.0:.0f} ms "
                        "exceeded before the request reached the engine"
                    )
                response = await asyncio.wait_for(
                    asyncio.shield(future), timeout=remaining
                )
        except (DeadlineExceeded, asyncio.TimeoutError) as exc:
            future.add_done_callback(_swallow_abandoned_error)
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            self._record_latency(
                path, time.perf_counter() - start, outcome="deadline"
            )
            budget_ms = deadline.budget * 1000.0 if deadline else None
            message = (
                str(exc)
                if isinstance(exc, DeadlineExceeded)
                else f"deadline of {budget_ms:.0f} ms exceeded while the "
                "request was queued or computing"
            )
            return 504, {
                "error": message,
                "deadline_ms": budget_ms,
                "deadline_exceeded": True,
            }
        except ReproError as exc:
            self._counters["errors"] += 1
            _SERVICE_ERRORS.inc()
            self._record_latency(
                path, time.perf_counter() - start, outcome="errors"
            )
            return 500, {"error": str(exc)}
        self._record_latency(path, time.perf_counter() - start)
        return 200, response

    def _admission_rejection(self) -> str | None:
        """Why a *new* computation cannot be admitted now (None = admit)."""
        if self._draining:
            return "draining after SIGTERM, not accepting new computations"
        if self.max_queue is not None and len(self._inflight) >= self.max_queue:
            return (
                f"compute queue full ({len(self._inflight)} computation(s) "
                f"in flight >= max_queue {self.max_queue})"
            )
        return None

    async def _compute_job(self, key: str, job, future: asyncio.Future) -> None:
        """Run *job* on the compute thread; fan the result out."""
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(self._compute, job)
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_exception(exc)
            return
        self._inflight.pop(key, None)
        self._counters["computed"] += 1
        _SERVICE_COMPUTED.inc()
        self._remember(key, response)
        if not future.cancelled():
            future.set_result(response)

    def _prepare(self, path: str, request: dict):
        """Canonical dedup key, compute closure and deadline of a request.

        Raises :class:`~repro.errors.ReproError` on validation
        failures, including a blown design-count budget — checked here,
        before the request can occupy the queue.  The deadline's clock
        starts here, at request receipt: queue wait spends the budget.
        """
        allowed = _SPACE_FIELDS if path == "/sweep" else _TIMELINE_FIELDS
        _require_fields(request, allowed, path.lstrip("/"))
        deadline_ms = _parse_deadline_ms(request.get("deadline_ms"))
        deadline = (
            None if deadline_ms is None else Deadline.after_ms(deadline_ms)
        )
        space = _normalize_space(request)
        designs = self._enumerate(space)
        budget = _parse_count(
            request.get("max_designs"), "max_designs", self.max_designs
        )
        budget = min(budget, self.max_designs)
        if len(designs) > budget:
            raise ValidationError(
                f"request enumerates {len(designs)} designs, over the "
                f"budget of {budget}; shrink the space or raise the "
                "service's --max-designs"
            )
        canonical = dict(space)
        if path == "/timeline":
            times = _parse_times(request)
            campaign = _parse_campaign(request)
            canonical["times"] = list(times)
            canonical["campaign"] = (
                campaign.to_dict() if campaign is not None else None
            )
            job = partial(self._timeline_job, space, designs, times, campaign)
        else:
            job = partial(self._sweep_job, space, designs)
        if deadline is not None:
            # Deadline passed keyword-only so deadline-free jobs keep the
            # historical two/four-argument shape (tests monkeypatch them).
            job = partial(job, deadline=deadline)
            # Each deadline carries its own budget: never share a
            # computation (or a remembered response) across requests.
            self._deadline_serial += 1
            canonical["deadline_serial"] = self._deadline_serial
        key = json.dumps(
            {"endpoint": path, **canonical}, sort_keys=True, default=str
        )
        return key, job, deadline

    def _enumerate(self, space: dict) -> list:
        from repro.evaluation.sweep import (
            enumerate_designs,
            enumerate_heterogeneous_designs,
        )

        if space["variants"]:
            from repro.enterprise import paper_variant_space

            pools = paper_variant_space()
            unknown = [role for role in space["roles"] if role not in pools]
            if unknown:
                raise ValidationError(
                    f"no variant pool for roles {unknown}; "
                    f"choose from {sorted(pools)}"
                )
            return list(
                enumerate_heterogeneous_designs(
                    space["roles"],
                    {role: pools[role] for role in space["roles"]},
                    max_replicas=space["max_replicas"],
                    max_total=space["max_total"],
                )
            )
        return list(
            enumerate_designs(
                space["roles"],
                max_replicas=space["max_replicas"],
                max_total=space["max_total"],
            )
        )

    # The job bodies run on the dedicated compute thread — the only
    # place the engine is ever touched after construction.

    def _sweep_job(self, space: dict, designs, deadline=None) -> dict:
        evaluations = self.engine.evaluate(designs, deadline=deadline)
        return sweep_response(
            space["roles"],
            space["max_replicas"],
            space["max_total"],
            space["variants"],
            self.engine.executor.name,
            evaluations,
        )

    def _timeline_job(
        self, space: dict, designs, times, campaign, deadline=None
    ) -> dict:
        timelines = self.engine.timeline(
            designs, times, campaign=campaign, deadline=deadline
        )
        return timeline_response(
            space["roles"],
            space["max_replicas"],
            space["max_total"],
            space["variants"],
            self.engine.executor.name,
            campaign,
            times,
            timelines,
        )

    def _remember(self, key: str, response: dict) -> None:
        while len(self._responses) >= _MAX_REMEMBERED_RESPONSES:
            self._responses.pop(next(iter(self._responses)))
        self._responses[key] = response

    def _record_latency(
        self, path: str, seconds: float, outcome: str = "ok"
    ) -> None:
        """Fold one request's latency into the per-endpoint aggregates.

        Failing requests land in a separate ``<path>#errors`` class so
        error latencies never skew the healthy aggregates — and are
        never silently dropped.
        """
        key = path if outcome == "ok" else f"{path}#{outcome}"
        stats = self._latency.setdefault(
            key,
            {
                "count": 0,
                "total_s": 0.0,
                "mean_s": 0.0,
                "min_s": None,
                "max_s": 0.0,
                "last_s": 0.0,
            },
        )
        stats["count"] += 1
        stats["total_s"] = round(stats["total_s"] + seconds, 6)
        stats["mean_s"] = round(stats["total_s"] / stats["count"], 6)
        previous_min = stats["min_s"]
        stats["min_s"] = round(
            seconds if previous_min is None else min(previous_min, seconds), 6
        )
        stats["max_s"] = round(max(stats["max_s"], seconds), 6)
        stats["last_s"] = round(seconds, 6)
        _REQUEST_SECONDS.observe(seconds, endpoint=path, outcome=outcome)

    # -- observability ------------------------------------------------------

    def _sync_registry(self) -> None:
        """Refresh registry series derived from live service state."""
        _IN_FLIGHT.set(len(self._inflight))
        _DRAINING.set(1 if self._draining else 0)

    def metrics(self) -> dict:
        """Request/cache counters, latency aggregates and the registry.

        ``counters``/``latency`` keep their original shapes;
        ``registry`` is the process-wide observability registry — every
        solver/cache/executor series, including telemetry merged back
        from pool workers.  ``GET /metrics`` with an ``Accept`` header
        naming ``text/plain`` (or ``prometheus``/``openmetrics``)
        serves the same registry in Prometheus text exposition format.
        """
        self._sync_registry()
        return {
            "counters": dict(self._counters, in_flight=len(self._inflight)),
            "latency": {path: dict(stats) for path, stats in self._latency.items()},
            "registry": observability.REGISTRY.to_dict(),
        }

    def healthz(self) -> dict:
        """Liveness plus engine/pool observability.

        The ``resilience`` section reports degradation state: drain
        status, queue occupancy against ``max_queue``, whether the
        persistent cache fell back to memory-only, and every registered
        circuit breaker (name → state/failures/opens).
        """
        executor = self.engine.executor
        cache = self.engine.persistent_cache
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "engine": {
                "executor": executor.name,
                "persistent_pool": bool(getattr(executor, "persistent", False)),
                "pool_recycles": getattr(executor, "recycle_count", 0),
                "structure_sharing": self.engine.structure_sharing,
                "cache_info": self.engine.cache_info,
            },
            "max_designs": self.max_designs,
            "resilience": {
                "draining": self._draining,
                "active_requests": self._active_requests,
                "queue_depth": len(self._inflight),
                "max_queue": self.max_queue,
                "drain_grace_s": self.drain_grace,
                "retry_after_s": self.retry_after,
                "cache_degraded": bool(cache.degraded) if cache else False,
                "breakers": breaker_states(),
            },
            **self.metrics(),
        }


# -- client -------------------------------------------------------------------


class ServiceClient:
    """Small synchronous client for :class:`EvaluationService`.

    Used by the test-suite, the CI smoke and scripts; any HTTP client
    works — the API is plain JSON over HTTP/1.1.

    A saturated or draining service answers 503 with a ``Retry-After``
    header; the client honours it under *retry* (a bounded
    :class:`~repro.resilience.RetryPolicy`, deterministic backoff) so
    benches and examples survive a briefly-unavailable server.  Pass
    ``retry=None`` to observe 503s directly.
    """

    #: Default 503 handling: three attempts, honouring ``Retry-After``
    #: (capped at ``max_delay``) and falling back to 0.2 s → 0.4 s.
    DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.2, max_delay=5.0)

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
        retry: RetryPolicy | None = DEFAULT_RETRY,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retry = retry

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ):
        """``(status, parsed body)`` of one request (no status check).

        JSON responses are parsed; text responses (e.g. the Prometheus
        exposition negotiated via ``headers={"Accept": "text/plain"}``)
        come back as the raw string.  503 responses are retried under
        :attr:`retry`; the final attempt's response is returned as-is.
        """
        attempts = self.retry.attempts if self.retry is not None else 1
        for attempt in range(1, attempts + 1):
            status, parsed, retry_after = self._request_once(
                method, path, payload, headers
            )
            if status != 503 or attempt == attempts:
                return status, parsed
            pause = self.retry.delay(attempt)
            if retry_after is not None:
                pause = min(max(retry_after, pause), self.retry.max_delay)
            _logger.debug(
                "service %s answered 503 (attempt %d/%d); retrying in %.2fs",
                path,
                attempt,
                attempts,
                pause,
            )
            if pause > 0.0:
                time.sleep(pause)
        raise AssertionError("unreachable retry state")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None,
        headers: dict | None,
    ):
        """One HTTP exchange: ``(status, parsed body, retry_after)``."""
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload).encode()
            request_headers = dict(headers or {})
            if body:
                request_headers.setdefault("Content-Type", "application/json")
            connection.request(
                method, path, body=body, headers=request_headers
            )
            response = connection.getresponse()
            data = response.read()
            status = response.status
            content_type = response.getheader("Content-Type", "")
            retry_after_header = response.getheader("Retry-After")
        finally:
            connection.close()
        retry_after = None
        if retry_after_header is not None:
            try:
                retry_after = float(retry_after_header)
            except ValueError:
                pass
        if not content_type.startswith("application/json"):
            return status, data.decode(), retry_after
        try:
            return status, json.loads(data.decode()), retry_after
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EvaluationError(
                f"service returned non-JSON for {path} (HTTP {status}): {exc}"
            ) from exc

    def _checked(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, parsed = self.request(method, path, payload)
        if status != 200:
            detail = parsed.get("error", parsed) if isinstance(parsed, dict) else parsed
            raise EvaluationError(
                f"service {path} request failed (HTTP {status}): {detail}"
            )
        return parsed

    def sweep(self, **fields) -> dict:
        """``POST /sweep`` with *fields* (see the module docstring)."""
        return self._checked("POST", "/sweep", fields)

    def timeline(self, **fields) -> dict:
        """``POST /timeline`` with *fields*."""
        return self._checked("POST", "/timeline", fields)

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``GET /metrics``."""
        status, text = self.request(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        if status != 200 or not isinstance(text, str):
            raise EvaluationError(
                f"Prometheus /metrics request failed (HTTP {status})"
            )
        return text

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.2) -> dict:
        """Poll ``/healthz`` until the service answers (or *timeout*)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (OSError, EvaluationError) as exc:
                if time.monotonic() >= deadline:
                    raise EvaluationError(
                        f"service at {self.host}:{self.port} not ready "
                        f"after {timeout:.0f}s: {exc}"
                    ) from exc
                time.sleep(interval)

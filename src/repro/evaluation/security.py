"""Security evaluation of designs (HARM construction + metrics)."""

from __future__ import annotations

from repro.attacktree.semantics import GateSemantics, WORST_CASE
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import DesignSpec
from repro.enterprise.heterogeneous import (
    HeterogeneousDesign,
    build_heterogeneous_harm,
    check_design_kind as _check_spec_kind,
)
from repro.harm import Harm, PathAggregation, SecurityMetrics, evaluate_security
from repro.patching.policy import PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = ["SecurityEvaluator"]


class SecurityEvaluator:
    """Compute before/after-patch security metrics for designs.

    Accepts any :class:`~repro.enterprise.design.DesignSpec`: homogeneous
    :class:`~repro.enterprise.design.RedundancyDesign` specs expand
    through the case study's role definitions, heterogeneous specs
    through their per-variant stacks — one evaluator, one metric
    pipeline.

    Parameters
    ----------
    case_study:
        The enterprise description.
    semantics:
        Attack-tree gate semantics (paper default: worst case).
    aggregation:
        Network-level ASP aggregation (paper-consistent default:
        independent paths; see DESIGN.md for the discussion).
    database:
        Vulnerability database for variant lookups of heterogeneous
        designs (default: the case study's own database).  Pass a
        diversity database when variant stacks fall outside the paper
        catalog.
    """

    def __init__(
        self,
        case_study: EnterpriseCaseStudy,
        semantics: GateSemantics = WORST_CASE,
        aggregation: PathAggregation = PathAggregation.INDEPENDENT_PATHS,
        database: VulnerabilityDatabase | None = None,
    ) -> None:
        self.case_study = case_study
        self.semantics = semantics
        self.aggregation = aggregation
        self.database = database if database is not None else case_study.database

    def build_harm(
        self, design: DesignSpec, policy: PatchPolicy | None = None
    ) -> Harm:
        """Host-level HARM for any design kind (after patch iff *policy*)."""
        if isinstance(design, HeterogeneousDesign):
            return build_heterogeneous_harm(
                self.case_study, design, self.database, policy
            )
        _check_spec_kind(design)
        return self.case_study.build_harm(design, policy)

    def before_patch(self, design: DesignSpec) -> SecurityMetrics:
        """Metrics of the unpatched network."""
        return evaluate_security(
            self.build_harm(design),
            semantics=self.semantics,
            aggregation=self.aggregation,
        )

    def after_patch(
        self, design: DesignSpec, policy: PatchPolicy
    ) -> SecurityMetrics:
        """Metrics after applying *policy*'s patches."""
        return evaluate_security(
            self.build_harm(design, policy),
            semantics=self.semantics,
            aggregation=self.aggregation,
        )

    def mean_time_to_compromise(
        self,
        design: DesignSpec,
        policy: PatchPolicy | None = None,
        exploit_rate: float = 1.0,
    ) -> float:
        """MTTC of *design*'s attack surface, for any design kind.

        The attacker-progression extension
        (:func:`repro.harm.mean_time_to_compromise`) dispatched through
        :meth:`build_harm`, so heterogeneous designs race the attacker
        over their per-variant surfaces.  With a *policy*, the surface
        is the after-patch one.
        """
        from repro.harm import mean_time_to_compromise

        return mean_time_to_compromise(
            self.build_harm(design, policy),
            exploit_rate=exploit_rate,
            semantics=self.semantics,
        )

"""Security evaluation of designs (HARM construction + metrics)."""

from __future__ import annotations

from repro.attacktree.semantics import GateSemantics, WORST_CASE
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import RedundancyDesign
from repro.harm import PathAggregation, SecurityMetrics, evaluate_security
from repro.patching.policy import PatchPolicy

__all__ = ["SecurityEvaluator"]


class SecurityEvaluator:
    """Compute before/after-patch security metrics for designs.

    Parameters
    ----------
    case_study:
        The enterprise description.
    semantics:
        Attack-tree gate semantics (paper default: worst case).
    aggregation:
        Network-level ASP aggregation (paper-consistent default:
        independent paths; see DESIGN.md for the discussion).
    """

    def __init__(
        self,
        case_study: EnterpriseCaseStudy,
        semantics: GateSemantics = WORST_CASE,
        aggregation: PathAggregation = PathAggregation.INDEPENDENT_PATHS,
    ) -> None:
        self.case_study = case_study
        self.semantics = semantics
        self.aggregation = aggregation

    def before_patch(self, design: RedundancyDesign) -> SecurityMetrics:
        """Metrics of the unpatched network."""
        harm = self.case_study.build_harm(design)
        return evaluate_security(
            harm, semantics=self.semantics, aggregation=self.aggregation
        )

    def after_patch(
        self, design: RedundancyDesign, policy: PatchPolicy
    ) -> SecurityMetrics:
        """Metrics after applying *policy*'s patches."""
        harm = self.case_study.build_harm(design, policy)
        return evaluate_security(
            harm, semantics=self.semantics, aggregation=self.aggregation
        )

"""Joint security + availability snapshots per design (Figs. 6-7 data).

Every entry point accepts any :class:`~repro.enterprise.design.DesignSpec`
— homogeneous :class:`~repro.enterprise.design.RedundancyDesign` and
diverse-stack :class:`~repro.enterprise.heterogeneous.HeterogeneousDesign`
flow through the same evaluators and produce the same
:class:`DesignEvaluation` shape, so sweeps and Pareto ranking can mix
design kinds freely.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.enterprise.casestudy import EnterpriseCaseStudy, paper_case_study
from repro.enterprise.design import DesignSpec
from repro.evaluation.availability import AvailabilityEvaluator
from repro.evaluation.security import SecurityEvaluator
from repro.harm import SecurityMetrics
from repro.patching.policy import CriticalVulnerabilityPolicy, PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = [
    "DesignSnapshot",
    "DesignEvaluation",
    "evaluate_design",
    "evaluate_designs",
    "evaluate_designs_shared",
]


@dataclass(frozen=True)
class DesignSnapshot:
    """One point of Figs. 6-7: security metrics plus COA.

    The COA reflects the patch schedule regardless of the security
    snapshot ("before patch" charts the security state before the cycle
    completes; servers are patched — and briefly down — either way).
    """

    security: SecurityMetrics
    coa: float

    def metric(self, name: str) -> float:
        """Look up a metric by paper abbreviation (incl. ``"COA"``)."""
        if name == "COA":
            return self.coa
        return float(self.security.as_dict()[name])


@dataclass(frozen=True)
class DesignEvaluation:
    """Before- and after-patch snapshots of one design (any spec kind)."""

    design: DesignSpec
    before: DesignSnapshot
    after: DesignSnapshot

    @property
    def label(self) -> str:
        """The design's paper-style label."""
        return self.design.label


def evaluate_design(
    design: DesignSpec,
    case_study: EnterpriseCaseStudy | None = None,
    policy: PatchPolicy | None = None,
    security_evaluator: SecurityEvaluator | None = None,
    availability_evaluator: AvailabilityEvaluator | None = None,
    database: VulnerabilityDatabase | None = None,
) -> DesignEvaluation:
    """Evaluate one design before and after patching.

    With no arguments beyond *design*, uses the paper's case study and
    critical-vulnerability policy.  Pass shared evaluator instances when
    scoring many designs so lower-layer solutions are reused; *database*
    supplies variant vulnerability records for heterogeneous designs
    (ignored when explicit evaluators are given).
    """
    if case_study is None:
        case_study = paper_case_study()
    if policy is None:
        policy = CriticalVulnerabilityPolicy()
    if security_evaluator is None:
        security_evaluator = SecurityEvaluator(case_study, database=database)
    if availability_evaluator is None:
        availability_evaluator = AvailabilityEvaluator(
            case_study, policy, database=database
        )

    coa = availability_evaluator.coa(design)
    return DesignEvaluation(
        design=design,
        before=DesignSnapshot(
            security=security_evaluator.before_patch(design), coa=coa
        ),
        after=DesignSnapshot(
            security=security_evaluator.after_patch(design, policy), coa=coa
        ),
    )


def evaluate_designs_shared(
    designs: Iterable[DesignSpec],
    case_study: EnterpriseCaseStudy,
    policy: PatchPolicy,
    database: VulnerabilityDatabase | None = None,
    structure_sharing: bool = True,
    security_evaluator: SecurityEvaluator | None = None,
    availability_evaluator: AvailabilityEvaluator | None = None,
) -> list[DesignEvaluation]:
    """Serial evaluation of *designs* with one shared evaluator pair.

    This is the chunk primitive of the sweep engine: the shared
    :class:`AvailabilityEvaluator` amortises the per-role (and
    per-variant) lower-layer SRN solves — and, with *structure_sharing*
    on, the per-pattern upper-layer explorations — across every design
    in the chunk, whatever mix of spec kinds the chunk holds.  Pass
    evaluator instances (e.g. primed from shared memory) to reuse their
    caches.

    A failing design raises :class:`~repro.errors.EvaluationError`
    carrying the design label and the original traceback — the error is
    always picklable, so process-pool sweeps surface the real failure
    instead of a bare ``BrokenProcessPool``.
    """
    if security_evaluator is None:
        security_evaluator = SecurityEvaluator(case_study, database=database)
    if availability_evaluator is None:
        availability_evaluator = AvailabilityEvaluator(
            case_study,
            policy,
            database=database,
            structure_sharing=structure_sharing,
        )
    return [
        _evaluate_labelled(
            design,
            case_study=case_study,
            policy=policy,
            security_evaluator=security_evaluator,
            availability_evaluator=availability_evaluator,
        )
        for design in designs
    ]


def _evaluate_labelled(design: DesignSpec, **kwargs) -> DesignEvaluation:
    """Evaluate one design, labelling any failure with the design.

    Domain errors (:class:`~repro.errors.ReproError`) re-raise with the
    design label prefixed — their messages are already self-explanatory.
    Unexpected exceptions additionally embed the formatted traceback in
    the message (and drop the exception chain), so they survive the
    process-pool pickle boundary no matter what the original exception
    type carried.
    """
    import traceback

    from repro.errors import EvaluationError, ReproError

    try:
        return evaluate_design(design, **kwargs)
    except ReproError as exc:
        raise EvaluationError(
            f"evaluating design {design.label!r} failed: "
            f"{type(exc).__name__}: {exc}"
        ) from None
    except Exception as exc:
        raise EvaluationError(
            f"evaluating design {design.label!r} failed: "
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        ) from None


def evaluate_designs(
    designs: Iterable[DesignSpec],
    case_study: EnterpriseCaseStudy | None = None,
    policy: PatchPolicy | None = None,
    executor: str | None = None,
    max_workers: int | None = None,
    database: VulnerabilityDatabase | None = None,
) -> list[DesignEvaluation]:
    """Evaluate many designs with shared (cached) evaluators.

    *executor* selects a sweep-engine executor (``"serial"``,
    ``"thread"`` or ``"process"``); the default runs in-process without
    engine overhead.
    """
    if case_study is None:
        case_study = paper_case_study()
    if policy is None:
        policy = CriticalVulnerabilityPolicy()
    if executor is not None and executor != "serial":
        from repro.evaluation.engine import SweepEngine

        engine = SweepEngine(
            case_study=case_study,
            policy=policy,
            executor=executor,
            max_workers=max_workers,
            database=database,
        )
        return engine.evaluate(designs)
    return evaluate_designs_shared(designs, case_study, policy, database=database)

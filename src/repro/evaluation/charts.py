"""Chart data for Figs. 6 (scatter) and 7 (radar), plus ASCII rendering
and CSV export for terminal-only environments."""

from __future__ import annotations

import io
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.evaluation.combined import DesignEvaluation
from repro.errors import EvaluationError

__all__ = [
    "ScatterPoint",
    "scatter_data",
    "render_scatter",
    "RadarSeries",
    "RADAR_METRICS",
    "radar_data",
    "render_radar_table",
    "to_csv",
]

#: The six radar axes of Fig. 7, in plotting order.
RADAR_METRICS = ("NoEP", "COA", "ASP", "AIM", "NoEV", "NoAP")


@dataclass(frozen=True)
class ScatterPoint:
    """One design's position in the Fig. 6 plane."""

    label: str
    asp: float
    coa: float


def scatter_data(
    evaluations: Iterable[DesignEvaluation], after_patch: bool = True
) -> list[ScatterPoint]:
    """ASP/COA pairs per design (Fig. 6a when ``after_patch=False``)."""
    points = []
    for evaluation in evaluations:
        snapshot = evaluation.after if after_patch else evaluation.before
        points.append(
            ScatterPoint(
                label=evaluation.label,
                asp=snapshot.security.attack_success_probability,
                coa=snapshot.coa,
            )
        )
    return points


def render_scatter(
    points: Sequence[ScatterPoint], width: int = 64, height: int = 18
) -> str:
    """ASCII scatter plot: ASP on x, COA on y, one letter per design."""
    if not points:
        raise EvaluationError("no points to plot")
    xs = [point.asp for point in points]
    ys = [point.coa for point in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    legend = []
    for position, point in enumerate(points):
        marker = markers[position % len(markers)]
        col = int((point.asp - x_lo) / x_span * (width - 1))
        row = int((point.coa - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker
        legend.append(
            f"  {marker}: {point.label}  (ASP={point.asp:.4f}, COA={point.coa:.6f})"
        )
    lines = [f"COA {y_hi:.6f}"]
    lines.extend("    |" + "".join(row) for row in grid)
    lines.append(f"    {y_lo:.6f} " + "-" * (width - 10))
    lines.append(f"    ASP: {x_lo:.4f} .. {x_hi:.4f}")
    lines.extend(legend)
    return "\n".join(lines)


@dataclass(frozen=True)
class RadarSeries:
    """One design's values on the six Fig. 7 axes (raw and normalised)."""

    label: str
    values: dict[str, float]
    normalised: dict[str, float]


def radar_data(
    evaluations: Iterable[DesignEvaluation],
    after_patch: bool = True,
    metrics: Sequence[str] = RADAR_METRICS,
) -> list[RadarSeries]:
    """Per-design axis values for the radar chart.

    Normalisation is min-max over the evaluated designs per axis (the
    paper scales each spoke independently); constant axes normalise
    to 1.0.
    """
    pool = list(evaluations)
    if not pool:
        raise EvaluationError("no designs to chart")
    raw: list[dict[str, float]] = []
    for evaluation in pool:
        snapshot = evaluation.after if after_patch else evaluation.before
        raw.append({metric: snapshot.metric(metric) for metric in metrics})
    ranges = {
        metric: (
            min(values[metric] for values in raw),
            max(values[metric] for values in raw),
        )
        for metric in metrics
    }
    series = []
    for evaluation, values in zip(pool, raw):
        normalised = {}
        for metric in metrics:
            lo, hi = ranges[metric]
            span = hi - lo
            normalised[metric] = 1.0 if span == 0 else (values[metric] - lo) / span
        series.append(
            RadarSeries(
                label=evaluation.label, values=dict(values), normalised=normalised
            )
        )
    return series


def render_radar_table(series: Sequence[RadarSeries]) -> str:
    """The radar chart as an aligned value table (one row per design)."""
    if not series:
        raise EvaluationError("no series to render")
    metrics = list(series[0].values)
    header = ["design"] + metrics
    widths = [max(len(header[0]), max(len(s.label) for s in series))]
    widths += [max(len(metric), 10) for metric in metrics]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(header, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for entry in series:
        row = [entry.label.ljust(widths[0])]
        for metric, width in zip(metrics, widths[1:]):
            row.append(f"{entry.values[metric]:.6g}".ljust(width))
        lines.append("  ".join(row))
    return "\n".join(lines)


def to_csv(
    evaluations: Iterable[DesignEvaluation], after_patch: bool = True
) -> str:
    """CSV export of the six metrics per design."""
    buffer = io.StringIO()
    buffer.write("design,AIM,ASP,NoEV,NoAP,NoEP,COA\n")
    for evaluation in evaluations:
        snapshot = evaluation.after if after_patch else evaluation.before
        security = snapshot.security
        buffer.write(
            f"\"{evaluation.label}\","
            f"{security.attack_impact},"
            f"{security.attack_success_probability},"
            f"{security.number_of_exploitable_vulnerabilities},"
            f"{security.number_of_attack_paths},"
            f"{security.number_of_entry_points},"
            f"{snapshot.coa}\n"
        )
    return buffer.getvalue()

"""Write the full experiment bundle (tables, figure data) to disk.

``write_experiment_bundle(directory)`` regenerates every table and
figure of the paper into plain-text and CSV files — the command-line
analogue of EXPERIMENTS.md.  Each artifact is self-describing (header
comment naming the table/figure it regenerates).
"""

from __future__ import annotations

from pathlib import Path

from repro.enterprise.casestudy import EnterpriseCaseStudy, paper_case_study
from repro.enterprise.design import example_network_design, paper_designs
from repro.evaluation.availability import AvailabilityEvaluator
from repro.evaluation.charts import (
    radar_data,
    render_radar_table,
    render_scatter,
    scatter_data,
    to_csv,
)
from repro.evaluation.combined import evaluate_designs
from repro.evaluation.report import (
    aggregated_rates_table,
    design_comparison_table,
    security_metrics_table,
    vulnerability_table,
)
from repro.evaluation.requirements import (
    PAPER_REGION_1_MULTI_METRIC,
    PAPER_REGION_1_TWO_METRIC,
    PAPER_REGION_2_MULTI_METRIC,
    PAPER_REGION_2_TWO_METRIC,
    satisfying_designs,
)
from repro.evaluation.security import SecurityEvaluator
from repro.patching.policy import CriticalVulnerabilityPolicy, PatchPolicy

__all__ = ["write_experiment_bundle"]


def _write(directory: Path, name: str, header: str, body: str) -> Path:
    path = directory / name
    path.write_text(f"# {header}\n{body}\n", encoding="utf-8")
    return path


def write_experiment_bundle(
    directory: str | Path,
    case_study: EnterpriseCaseStudy | None = None,
    policy: PatchPolicy | None = None,
) -> list[Path]:
    """Regenerate every paper artifact under *directory*.

    Returns the written file paths (ten files).  The directory is
    created if missing; existing files are overwritten.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if case_study is None:
        case_study = paper_case_study()
    if policy is None:
        policy = CriticalVulnerabilityPolicy()

    example = example_network_design()
    security = SecurityEvaluator(case_study)
    availability = AvailabilityEvaluator(case_study, policy)
    evaluations = evaluate_designs(
        paper_designs(), case_study=case_study, policy=policy
    )

    written = [
        _write(
            directory,
            "table1_vulnerabilities.txt",
            "Table I: vulnerability information of the example network",
            vulnerability_table(case_study),
        ),
        _write(
            directory,
            "table2_security_metrics.txt",
            "Table II: security metrics before/after patch",
            security_metrics_table(
                security.before_patch(example),
                security.after_patch(example, policy),
            ),
        ),
        _write(
            directory,
            "table5_aggregated_rates.txt",
            "Table V: aggregated patch/recovery rates (Eqs. 1-2)",
            aggregated_rates_table(availability.aggregates_for(example)),
        ),
        _write(
            directory,
            "table6_coa.txt",
            "Table VI: capacity oriented availability",
            f"COA({example.label}) = {availability.coa(example):.6f}",
        ),
        _write(
            directory,
            "fig6_scatter_before.txt",
            "Fig. 6a: ASP vs COA before patch",
            render_scatter(scatter_data(evaluations, after_patch=False)),
        ),
        _write(
            directory,
            "fig6_scatter_after.txt",
            "Fig. 6b: ASP vs COA after patch",
            render_scatter(scatter_data(evaluations, after_patch=True)),
        ),
        _write(
            directory,
            "fig7_radar_before.txt",
            "Fig. 7a: six metrics before patch",
            render_radar_table(radar_data(evaluations, after_patch=False)),
        ),
        _write(
            directory,
            "fig7_radar_after.txt",
            "Fig. 7b: six metrics after patch",
            render_radar_table(radar_data(evaluations, after_patch=True)),
        ),
        _write(
            directory,
            "design_comparison.csv",
            "per-design metrics after patch (CSV)",
            to_csv(evaluations, after_patch=True),
        ),
    ]

    selections = []
    for name, region in (
        ("Eq.3 region 1", PAPER_REGION_1_TWO_METRIC),
        ("Eq.3 region 2", PAPER_REGION_2_TWO_METRIC),
        ("Eq.4 region 1", PAPER_REGION_1_MULTI_METRIC),
        ("Eq.4 region 2", PAPER_REGION_2_MULTI_METRIC),
    ):
        labels = [e.label for e in satisfying_designs(evaluations, region)]
        selections.append(f"{name}: {', '.join(labels) if labels else '(none)'}")
    written.append(
        _write(
            directory,
            "design_selections.txt",
            "Eq. (3)/(4) design selections",
            "\n".join([design_comparison_table(evaluations), ""] + selections),
        )
    )
    return written

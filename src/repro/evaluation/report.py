"""Text renderings of the paper's tables (Tables I, II, V) and summaries,
plus the canonical JSON payload of a design evaluation.

:func:`design_payload` is shared by the ``repro sweep`` CLI and the
evaluation service (``repro serve``), so their JSON outputs agree by
construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.availability.aggregation import ServiceAggregate
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.evaluation.combined import DesignEvaluation
from repro.harm import SecurityMetrics

__all__ = [
    "format_table",
    "vulnerability_table",
    "security_metrics_table",
    "aggregated_rates_table",
    "design_comparison_table",
    "snapshot_payload",
    "design_payload",
]


def snapshot_payload(snapshot) -> dict:
    """JSON-ready dict of one before/after security+COA snapshot."""
    payload = snapshot.security.as_dict()
    payload["COA"] = snapshot.coa
    return payload


def design_payload(evaluation: DesignEvaluation, on_front: bool) -> dict:
    """The canonical JSON-ready dict of one design evaluation.

    *on_front* flags membership of the after-patch Pareto front (the
    caller computes the front over the whole result set).
    """
    from repro.enterprise import HeterogeneousDesign

    payload = {
        "label": evaluation.label,
        "counts": evaluation.design.counts,
        "total_servers": evaluation.design.total_servers,
        "before": snapshot_payload(evaluation.before),
        "after": snapshot_payload(evaluation.after),
        "pareto": on_front,
    }
    if isinstance(evaluation.design, HeterogeneousDesign):
        payload["variants"] = evaluation.design.tiers()
    return payload


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as an aligned plain-text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    separator = "  ".join("-" * width for width in widths)
    lines = [_line(list(headers)), separator]
    lines.extend(_line(row) for row in materialised)
    return "\n".join(lines)


def vulnerability_table(case_study: EnterpriseCaseStudy) -> str:
    """Table I: exploitable vulnerabilities with impact and probability."""
    rows = []
    for role in case_study.topology.roles:
        for vuln in case_study.role_exploitable(role):
            rows.append(
                (
                    role,
                    vuln.cve_id,
                    f"{vuln.attack_impact:.1f}",
                    f"{vuln.attack_success_probability:.2f}",
                    f"{vuln.base_score:.1f}",
                    "critical" if vuln.is_critical() else "",
                )
            )
    return format_table(
        ("role", "CVE", "impact", "ASP", "base", "severity"), rows
    )


def security_metrics_table(
    before: SecurityMetrics, after: SecurityMetrics
) -> str:
    """Table II: the five metrics before/after patch."""
    rows = [
        (
            label,
            f"{metrics.attack_impact:.1f}",
            f"{metrics.attack_success_probability:.3f}",
            metrics.number_of_exploitable_vulnerabilities,
            metrics.number_of_attack_paths,
            metrics.number_of_entry_points,
        )
        for label, metrics in (("before patch", before), ("after patch", after))
    ]
    return format_table(("HARM", "AIM", "ASP", "NoEV", "NoAP", "NoEP"), rows)


def aggregated_rates_table(aggregates: Mapping[str, ServiceAggregate]) -> str:
    """Table V: MTTP / patch rate / MTTR / recovery rate per service."""
    rows = [
        (
            name,
            f"{agg.mttp_hours:.0f}",
            f"{agg.patch_rate:.5f}",
            f"{agg.mttr_hours:.4f}",
            f"{agg.recovery_rate:.5f}",
        )
        for name, agg in aggregates.items()
    ]
    return format_table(
        ("service", "MTTP (h)", "patch rate", "MTTR (h)", "recovery rate"), rows
    )


def design_comparison_table(
    evaluations: Iterable[DesignEvaluation], after_patch: bool = True
) -> str:
    """Figs. 6-7 as numbers: one row per design."""
    rows = []
    for evaluation in evaluations:
        snapshot = evaluation.after if after_patch else evaluation.before
        security = snapshot.security
        rows.append(
            (
                evaluation.label,
                f"{security.attack_impact:.1f}",
                f"{security.attack_success_probability:.4f}",
                security.number_of_exploitable_vulnerabilities,
                security.number_of_attack_paths,
                security.number_of_entry_points,
                f"{snapshot.coa:.6f}",
            )
        )
    return format_table(
        ("design", "AIM", "ASP", "NoEV", "NoAP", "NoEP", "COA"), rows
    )

"""CVSS v2 base-vector parsing.

A CVSS v2 base vector looks like ``AV:N/AC:L/Au:N/C:C/I:C/A:C``; the six
metrics are access vector, access complexity, authentication and the
confidentiality / integrity / availability impacts.  Numeric weights
follow the CVSS v2.0 specification (first.org).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CvssError

__all__ = ["CvssVector"]

_ACCESS_VECTOR = {"L": 0.395, "A": 0.646, "N": 1.0}
_ACCESS_COMPLEXITY = {"H": 0.35, "M": 0.61, "L": 0.71}
_AUTHENTICATION = {"M": 0.45, "S": 0.56, "N": 0.704}
_IMPACT = {"N": 0.0, "P": 0.275, "C": 0.660}

_FIELDS = ("AV", "AC", "Au", "C", "I", "A")
_TABLES = {
    "AV": _ACCESS_VECTOR,
    "AC": _ACCESS_COMPLEXITY,
    "Au": _AUTHENTICATION,
    "C": _IMPACT,
    "I": _IMPACT,
    "A": _IMPACT,
}


@dataclass(frozen=True)
class CvssVector:
    """A parsed CVSS v2 base vector.

    Attributes hold the single-letter metric levels (e.g. ``access_vector
    == "N"``); the ``*_weight`` properties expose the specification's
    numeric weights.

    Examples
    --------
    >>> v = CvssVector.parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
    >>> v.access_vector, v.conf_impact
    ('N', 'C')
    """

    access_vector: str
    access_complexity: str
    authentication: str
    conf_impact: str
    integ_impact: str
    avail_impact: str

    def __post_init__(self) -> None:
        values = {
            "AV": self.access_vector,
            "AC": self.access_complexity,
            "Au": self.authentication,
            "C": self.conf_impact,
            "I": self.integ_impact,
            "A": self.avail_impact,
        }
        for field, value in values.items():
            if value not in _TABLES[field]:
                raise CvssError(
                    f"invalid CVSS v2 level {value!r} for metric {field}; "
                    f"expected one of {sorted(_TABLES[field])}"
                )

    @classmethod
    def parse(cls, text: str) -> "CvssVector":
        """Parse a ``AV:N/AC:L/Au:N/C:C/I:C/A:C`` style vector string.

        A surrounding ``(...)`` pair and a leading ``CVSS2#`` prefix are
        tolerated, matching common NVD export formats.
        """
        if not isinstance(text, str) or not text:
            raise CvssError(f"CVSS vector must be a non-empty string, got {text!r}")
        body = text.strip()
        if body.startswith("(") and body.endswith(")"):
            body = body[1:-1]
        if body.upper().startswith("CVSS2#"):
            body = body[6:]
        parts = body.split("/")
        if len(parts) != len(_FIELDS):
            raise CvssError(
                f"CVSS v2 base vector needs {len(_FIELDS)} metrics, got {text!r}"
            )
        seen: dict[str, str] = {}
        for part in parts:
            if ":" not in part:
                raise CvssError(f"malformed CVSS metric {part!r} in {text!r}")
            key, _, value = part.partition(":")
            key = key.strip()
            if key not in _FIELDS:
                raise CvssError(f"unknown CVSS v2 metric {key!r} in {text!r}")
            if key in seen:
                raise CvssError(f"duplicate CVSS v2 metric {key!r} in {text!r}")
            seen[key] = value.strip()
        missing = [field for field in _FIELDS if field not in seen]
        if missing:
            raise CvssError(f"missing CVSS v2 metrics {missing} in {text!r}")
        return cls(
            access_vector=seen["AV"],
            access_complexity=seen["AC"],
            authentication=seen["Au"],
            conf_impact=seen["C"],
            integ_impact=seen["I"],
            avail_impact=seen["A"],
        )

    # -- numeric weights ----------------------------------------------------

    @property
    def access_vector_weight(self) -> float:
        """Numeric weight of the access-vector level."""
        return _ACCESS_VECTOR[self.access_vector]

    @property
    def access_complexity_weight(self) -> float:
        """Numeric weight of the access-complexity level."""
        return _ACCESS_COMPLEXITY[self.access_complexity]

    @property
    def authentication_weight(self) -> float:
        """Numeric weight of the authentication level."""
        return _AUTHENTICATION[self.authentication]

    @property
    def conf_impact_weight(self) -> float:
        """Numeric weight of the confidentiality-impact level."""
        return _IMPACT[self.conf_impact]

    @property
    def integ_impact_weight(self) -> float:
        """Numeric weight of the integrity-impact level."""
        return _IMPACT[self.integ_impact]

    @property
    def avail_impact_weight(self) -> float:
        """Numeric weight of the availability-impact level."""
        return _IMPACT[self.avail_impact]

    def to_string(self) -> str:
        """Canonical ``AV:_/AC:_/Au:_/C:_/I:_/A:_`` representation."""
        return (
            f"AV:{self.access_vector}/AC:{self.access_complexity}"
            f"/Au:{self.authentication}/C:{self.conf_impact}"
            f"/I:{self.integ_impact}/A:{self.avail_impact}"
        )

    def __str__(self) -> str:
        return self.to_string()

"""CVSS v2 base-score arithmetic (specification section 3.2.1).

Formulas::

    Impact         = 10.41 * (1 - (1-C) * (1-I) * (1-A))
    Exploitability = 20 * AV * AC * Au
    f(Impact)      = 0 if Impact == 0 else 1.176
    BaseScore      = ((0.6*Impact) + (0.4*Exploitability) - 1.5) * f(Impact)

All scores are rounded to one decimal, as published by NVD.  The paper
uses ``impact`` directly as the attack impact and ``exploitability / 10``
as the attack success probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cvss.vector import CvssVector

__all__ = [
    "BaseScores",
    "impact_subscore",
    "exploitability_subscore",
    "base_score",
    "score_vector",
]


def _round1(value: float) -> float:
    """Round half away from zero to one decimal (CVSS/NVD convention)."""
    return float(int(value * 10 + (0.5 if value >= 0 else -0.5))) / 10.0


def impact_subscore(vector: CvssVector, rounded: bool = True) -> float:
    """CVSS v2 impact sub-score of *vector*.

    With ``rounded=True`` (the display/NVD convention) the value is
    rounded to one decimal and capped at 10.0; the raw value — which can
    reach 10.0008 for C:C/I:C/A:C and is what the base equation uses —
    is returned with ``rounded=False``.
    """
    raw = 10.41 * (
        1.0
        - (1.0 - vector.conf_impact_weight)
        * (1.0 - vector.integ_impact_weight)
        * (1.0 - vector.avail_impact_weight)
    )
    return _round1(min(raw, 10.0)) if rounded else raw


def exploitability_subscore(vector: CvssVector, rounded: bool = True) -> float:
    """CVSS v2 exploitability sub-score of *vector* in [0, 10]."""
    raw = (
        20.0
        * vector.access_vector_weight
        * vector.access_complexity_weight
        * vector.authentication_weight
    )
    return _round1(min(raw, 10.0)) if rounded else raw


def base_score(vector: CvssVector) -> float:
    """CVSS v2 base score of *vector* in [0, 10].

    Following NVD's published arithmetic, the base equation takes the
    *unrounded* sub-scores; only the final score is rounded to one
    decimal (e.g. AV:L/AC:L/Au:N/C:C/I:C/A:C scores 7.2, not 7.1).
    """
    impact = impact_subscore(vector, rounded=False)
    exploitability = exploitability_subscore(vector, rounded=False)
    f_impact = 0.0 if impact == 0.0 else 1.176
    raw = ((0.6 * impact) + (0.4 * exploitability) - 1.5) * f_impact
    raw = min(max(raw, 0.0), 10.0)
    return _round1(raw)


@dataclass(frozen=True)
class BaseScores:
    """The three CVSS v2 base numbers for one vector."""

    impact: float
    exploitability: float
    base: float

    @property
    def attack_success_probability(self) -> float:
        """Paper convention: exploitability sub-score divided by 10."""
        return self.exploitability / 10.0

    @property
    def attack_impact(self) -> float:
        """Paper convention: the impact sub-score itself."""
        return self.impact


def score_vector(vector: CvssVector | str) -> BaseScores:
    """Compute :class:`BaseScores` for a vector or vector string.

    Examples
    --------
    >>> score_vector("AV:N/AC:L/Au:N/C:C/I:C/A:C").base
    10.0
    >>> score_vector("AV:L/AC:L/Au:N/C:C/I:C/A:C").base
    7.2
    """
    if isinstance(vector, str):
        vector = CvssVector.parse(vector)
    return BaseScores(
        impact=impact_subscore(vector),
        exploitability=exploitability_subscore(vector),
        base=base_score(vector),
    )

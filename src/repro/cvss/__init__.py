"""CVSS v2 base-metric substrate.

The paper derives every security parameter from CVSS v2 base metrics:
attack impact = CVSS impact sub-score, attack success probability =
exploitability sub-score / 10, and the patch policy selects "critical"
vulnerabilities by base score.  This package implements the full CVSS v2
base-score arithmetic from vector strings.
"""

from repro.cvss.scores import (
    BaseScores,
    base_score,
    exploitability_subscore,
    impact_subscore,
    score_vector,
)
from repro.cvss.severity import Severity, severity_from_score
from repro.cvss.vector import CvssVector

__all__ = [
    "CvssVector",
    "BaseScores",
    "score_vector",
    "base_score",
    "impact_subscore",
    "exploitability_subscore",
    "Severity",
    "severity_from_score",
]

"""Severity banding for CVSS base scores.

NVD's CVSS v2 qualitative bands are LOW [0, 4), MEDIUM [4, 7) and
HIGH [7, 10].  The paper additionally defines *critical* vulnerabilities
as those with base score strictly above 8.0; that threshold drives the
patch policy and lives in :mod:`repro.patching.policy`.
"""

from __future__ import annotations

from enum import Enum

from repro._validation import check_non_negative
from repro.errors import CvssError

__all__ = ["Severity", "severity_from_score"]


class Severity(str, Enum):
    """NVD CVSS v2 qualitative severity band."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    def __str__(self) -> str:
        return self.value


def severity_from_score(score: float) -> Severity:
    """Map a CVSS v2 base score in [0, 10] to its NVD severity band.

    Examples
    --------
    >>> severity_from_score(9.3)
    <Severity.HIGH: 'high'>
    >>> severity_from_score(5.0)
    <Severity.MEDIUM: 'medium'>
    """
    value = check_non_negative(score, "CVSS base score")
    if value > 10.0:
        raise CvssError(f"CVSS base score must be <= 10, got {value}")
    if value < 4.0:
        return Severity.LOW
    if value < 7.0:
        return Severity.MEDIUM
    return Severity.HIGH

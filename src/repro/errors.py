"""Exception hierarchy shared by every subsystem of :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries while still being able to discriminate
between model-definition problems (bad input) and analysis problems
(numerical failure, state-space explosion).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ModelError",
    "GraphError",
    "CvssError",
    "VulnerabilityError",
    "AttackTreeError",
    "HarmError",
    "CtmcError",
    "SrnError",
    "StateSpaceError",
    "SolverError",
    "EvaluationError",
    "DeadlineExceeded",
    "FaultInjected",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong type, range or structure)."""


class ModelError(ReproError):
    """A model definition is structurally inconsistent."""


class GraphError(ModelError):
    """A graph operation failed (unknown node, duplicate edge, ...)."""


class CvssError(ValidationError):
    """A CVSS vector or metric value could not be interpreted."""


class VulnerabilityError(ModelError):
    """A vulnerability record or database query is invalid."""


class AttackTreeError(ModelError):
    """An attack tree is malformed (cycle, unknown gate, empty gate)."""


class HarmError(ModelError):
    """A HARM is inconsistent (missing lower-layer tree, unknown host)."""


class CtmcError(ModelError):
    """A CTMC definition is invalid (non-square generator, bad labels)."""


class SrnError(ModelError):
    """A stochastic reward net definition is invalid."""


class StateSpaceError(SrnError):
    """State-space generation exceeded the configured limit."""


class SolverError(ReproError, RuntimeError):
    """A numerical solver failed to produce a usable result."""


class EvaluationError(ReproError):
    """An evaluation pipeline was asked for something it cannot compute."""


class DeadlineExceeded(EvaluationError):
    """A request's monotonic time budget ran out before the work finished."""


class FaultInjected(ReproError):
    """Raised by an armed fault point with no site-provided exception."""

"""Gate combination semantics for attack-tree metrics.

The HARM literature (Hong & Kim 2016; Ge et al. 2017) uses *worst-case*
semantics: the attacker picks the best OR branch (max) and must take every
AND branch (impact adds, probabilities multiply).  The *probabilistic*
variant treats OR branches as independent exploitation attempts
(p = 1 - prod(1 - p_i)); impact combination is unchanged because impact
models damage of the chosen strategy, not chance.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from math import prod

from repro.errors import AttackTreeError

__all__ = ["GateSemantics", "WORST_CASE", "PROBABILISTIC"]


def _or_max(values: Sequence[float]) -> float:
    return max(values)

def _or_independent(values: Sequence[float]) -> float:
    return 1.0 - prod(1.0 - value for value in values)

def _and_sum(values: Sequence[float]) -> float:
    return float(sum(values))

def _and_product(values: Sequence[float]) -> float:
    return prod(values)


@dataclass(frozen=True)
class GateSemantics:
    """How AND/OR gates combine impact and probability values.

    Attributes
    ----------
    name:
        Identifier used in reports.
    or_probability, and_probability:
        Combinators for attack success probability.
    or_impact, and_impact:
        Combinators for attack impact.
    """

    name: str
    or_probability: "CombineFn"
    and_probability: "CombineFn"
    or_impact: "CombineFn"
    and_impact: "CombineFn"

    def combine_probability(self, gate_is_and: bool, values: Sequence[float]) -> float:
        """Combine child probabilities for an AND (True) or OR gate."""
        _check_values(values)
        combine = self.and_probability if gate_is_and else self.or_probability
        return combine(values)

    def combine_impact(self, gate_is_and: bool, values: Sequence[float]) -> float:
        """Combine child impacts for an AND (True) or OR gate."""
        _check_values(values)
        combine = self.and_impact if gate_is_and else self.or_impact
        return combine(values)


def _check_values(values: Sequence[float]) -> None:
    if not values:
        raise AttackTreeError("cannot combine an empty value sequence")


from collections.abc import Callable  # noqa: E402  (type alias after use)

CombineFn = Callable[[Sequence[float]], float]

#: Paper semantics: attacker picks the best OR branch.
WORST_CASE = GateSemantics(
    name="worst_case",
    or_probability=_or_max,
    and_probability=_and_product,
    or_impact=_or_max,
    and_impact=_and_sum,
)

#: OR branches as independent attempts.
PROBABILISTIC = GateSemantics(
    name="probabilistic",
    or_probability=_or_independent,
    and_probability=_and_product,
    or_impact=_or_max,
    and_impact=_and_sum,
)

"""Attack trees: the lower layer of the two-layered HARM.

An attack tree describes how a single host is compromised: leaves are
exploitable vulnerabilities, internal AND/OR gates combine them.  The
paper evaluates attack impact (OR = max, AND = sum) and attack success
probability (OR = attacker-best = max, AND = product); the probabilistic
OR variant (1 - prod(1-p)) is also provided.
"""

from repro.attacktree.nodes import Gate
from repro.attacktree.semantics import GateSemantics, PROBABILISTIC, WORST_CASE
from repro.attacktree.tree import AttackTree

__all__ = ["AttackTree", "Gate", "GateSemantics", "WORST_CASE", "PROBABILISTIC"]

"""Attack-tree node types."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro._validation import check_name, check_non_negative, check_probability
from repro.errors import AttackTreeError

__all__ = ["Gate", "LeafNode", "GateNode", "TreeNode"]


class Gate(str, Enum):
    """Gate type of an internal attack-tree node."""

    AND = "and"
    OR = "or"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class LeafNode:
    """A leaf: one exploitable vulnerability with its two paper metrics.

    Parameters
    ----------
    name:
        Identifier, conventionally the CVE id.
    impact:
        Attack impact (CVSS v2 impact sub-score, in [0, 10]).
    probability:
        Attack success probability (exploitability sub-score / 10).
    """

    name: str
    impact: float
    probability: float

    def __post_init__(self) -> None:
        check_name(self.name, "leaf name")
        check_non_negative(self.impact, "impact")
        if self.impact > 10.0:
            raise AttackTreeError(f"impact must be <= 10, got {self.impact}")
        check_probability(self.probability, "probability")

    @property
    def is_leaf(self) -> bool:
        """Always True for leaves."""
        return True


@dataclass(frozen=True)
class GateNode:
    """An internal AND/OR gate over one or more child nodes."""

    gate: Gate
    children: tuple["TreeNode", ...]
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not isinstance(self.gate, Gate):
            raise AttackTreeError(f"gate must be a Gate, got {self.gate!r}")
        if not self.children:
            raise AttackTreeError("a gate needs at least one child")
        for child in self.children:
            if not isinstance(child, (LeafNode, GateNode)):
                raise AttackTreeError(f"invalid child node {child!r}")

    @property
    def is_leaf(self) -> bool:
        """Always False for gates."""
        return False


TreeNode = LeafNode | GateNode

"""The attack tree itself: construction, evaluation, pruning."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import AttackTreeError
from repro.attacktree.nodes import Gate, GateNode, LeafNode, TreeNode
from repro.attacktree.semantics import GateSemantics, WORST_CASE
from repro.vulnerability.model import Vulnerability

__all__ = ["AttackTree"]

#: A branch spec entry: a leaf name, or a tuple of names forming an AND group.
BranchSpec = str | tuple[str, ...]


class AttackTree:
    """A host-level attack tree rooted at a single node.

    The paper's trees are one OR root whose branches are single
    vulnerabilities or AND pairs; arbitrary nesting is supported.

    Examples
    --------
    >>> leaves = {"a": (10.0, 1.0), "b": (2.9, 1.0), "c": (10.0, 0.39)}
    >>> tree = AttackTree.from_branches(
    ...     {name: LeafNode(name, *metrics) for name, metrics in leaves.items()},
    ...     ["a", ("b", "c")])
    >>> tree.impact()
    12.9
    """

    def __init__(self, root: TreeNode) -> None:
        if not isinstance(root, (LeafNode, GateNode)):
            raise AttackTreeError(f"root must be a tree node, got {root!r}")
        self._root = root

    # -- constructors --------------------------------------------------------

    @classmethod
    def single(cls, leaf: LeafNode) -> "AttackTree":
        """A tree consisting of one vulnerability."""
        return cls(leaf)

    @classmethod
    def from_branches(
        cls,
        leaves: dict[str, LeafNode],
        branches: Sequence[BranchSpec],
    ) -> "AttackTree":
        """Build ``OR(branch, ...)`` where tuple branches become AND gates.

        This is the paper's tree shape: ``["v1", "v2", ("v4", "v5")]``
        reads "v1 OR v2 OR (v4 AND v5)".
        """
        if not branches:
            raise AttackTreeError("an attack tree needs at least one branch")
        children: list[TreeNode] = []
        for branch in branches:
            if isinstance(branch, str):
                children.append(_lookup(leaves, branch))
            elif isinstance(branch, tuple):
                if not branch:
                    raise AttackTreeError("empty AND group in branch spec")
                group = tuple(_lookup(leaves, name) for name in branch)
                if len(group) == 1:
                    children.append(group[0])
                else:
                    children.append(GateNode(Gate.AND, group))
            else:
                raise AttackTreeError(f"invalid branch spec entry {branch!r}")
        if len(children) == 1:
            return cls(children[0])
        return cls(GateNode(Gate.OR, tuple(children)))

    @classmethod
    def from_vulnerabilities(
        cls,
        vulnerabilities: Iterable[Vulnerability],
        branches: Sequence[BranchSpec] | None = None,
    ) -> "AttackTree":
        """Build a tree from vulnerability records.

        Without *branches*, every vulnerability becomes an alternative
        (flat OR) — the generic default when no expert tree is available.
        With *branches*, names refer to CVE identifiers.
        """
        leaves = {
            vuln.cve_id: LeafNode(
                vuln.cve_id, vuln.attack_impact, vuln.attack_success_probability
            )
            for vuln in vulnerabilities
        }
        if not leaves:
            raise AttackTreeError("cannot build a tree from zero vulnerabilities")
        if branches is None:
            branches = list(leaves)
        return cls.from_branches(leaves, branches)

    # -- structure -------------------------------------------------------------

    @property
    def root(self) -> TreeNode:
        """The root node."""
        return self._root

    def leaves(self) -> list[LeafNode]:
        """All leaves in depth-first order."""
        found: list[LeafNode] = []

        def _walk(node: TreeNode) -> None:
            if isinstance(node, LeafNode):
                found.append(node)
            else:
                for child in node.children:
                    _walk(child)

        _walk(self._root)
        return found

    def leaf_names(self) -> list[str]:
        """Names of all leaves in depth-first order."""
        return [leaf.name for leaf in self.leaves()]

    def size(self) -> int:
        """Total number of nodes (gates plus leaves)."""

        def _count(node: TreeNode) -> int:
            if isinstance(node, LeafNode):
                return 1
            return 1 + sum(_count(child) for child in node.children)

        return _count(self._root)

    def depth(self) -> int:
        """Longest root-to-leaf node count (a lone leaf has depth 1)."""

        def _depth(node: TreeNode) -> int:
            if isinstance(node, LeafNode):
                return 1
            return 1 + max(_depth(child) for child in node.children)

        return _depth(self._root)

    # -- evaluation --------------------------------------------------------------

    def impact(self, semantics: GateSemantics = WORST_CASE) -> float:
        """Attack impact at the root (paper: aim_root)."""

        def _eval(node: TreeNode) -> float:
            if isinstance(node, LeafNode):
                return node.impact
            values = [_eval(child) for child in node.children]
            return semantics.combine_impact(node.gate is Gate.AND, values)

        return _eval(self._root)

    def probability(self, semantics: GateSemantics = WORST_CASE) -> float:
        """Attack success probability at the root."""

        def _eval(node: TreeNode) -> float:
            if isinstance(node, LeafNode):
                return node.probability
            values = [_eval(child) for child in node.children]
            return semantics.combine_probability(node.gate is Gate.AND, values)

        return _eval(self._root)

    def risk(self, semantics: GateSemantics = WORST_CASE) -> float:
        """Risk = impact x probability (survey-style composite metric)."""
        return self.impact(semantics) * self.probability(semantics)

    # -- transformation ------------------------------------------------------------

    def without_leaves(self, names: Iterable[str]) -> "AttackTree | None":
        """A new tree with the named leaves removed (patched).

        Removing a child of an AND gate removes the whole gate: the attack
        step chain is broken.  Returns ``None`` when nothing remains — the
        host is no longer exploitable.
        """
        drop = set(names)

        def _prune(node: TreeNode) -> TreeNode | None:
            if isinstance(node, LeafNode):
                return None if node.name in drop else node
            pruned = [_prune(child) for child in node.children]
            if node.gate is Gate.AND:
                if any(child is None for child in pruned):
                    return None
                kept = [child for child in pruned if child is not None]
            else:
                kept = [child for child in pruned if child is not None]
                if not kept:
                    return None
            if len(kept) == 1:
                return kept[0]
            return GateNode(node.gate, tuple(kept), name=node.name)

        new_root = _prune(self._root)
        if new_root is None:
            return None
        return AttackTree(new_root)

    def to_expression(self) -> str:
        """Readable boolean-style expression, e.g. ``(a | (b & c))``."""

        def _fmt(node: TreeNode) -> str:
            if isinstance(node, LeafNode):
                return node.name
            symbol = " & " if node.gate is Gate.AND else " | "
            return "(" + symbol.join(_fmt(child) for child in node.children) + ")"

        return _fmt(self._root)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"AttackTree({self.to_expression()})"


def _lookup(leaves: dict[str, LeafNode], name: str) -> LeafNode:
    try:
        return leaves[name]
    except KeyError:
        raise AttackTreeError(f"unknown leaf {name!r} in branch spec") from None

"""Reachability-layer attack graph."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import HarmError
from repro.graphs import DiGraph, all_simple_paths

__all__ = ["AttackGraph", "ATTACKER"]

#: The distinguished source node representing the external attacker.
ATTACKER = "__attacker__"


class AttackGraph:
    """Network-reachability graph with a distinguished attacker node.

    Hosts are added by name; ``add_entry_point`` connects the attacker to
    a host; ``add_reachability`` adds host-to-host connectivity.  Targets
    are the attack goals (the database servers in the paper).

    Examples
    --------
    >>> ag = AttackGraph(["web", "db"], targets=["db"])
    >>> ag.add_entry_point("web")
    >>> ag.add_reachability("web", "db")
    >>> ag.attack_paths()
    [['web', 'db']]
    """

    def __init__(
        self,
        hosts: Iterable[str] = (),
        targets: Iterable[str] = (),
    ) -> None:
        self._graph = DiGraph()
        self._graph.add_node(ATTACKER)
        self._targets: list[str] = []
        for host in hosts:
            self.add_host(host)
        for target in targets:
            self.add_target(target)

    # -- construction ----------------------------------------------------------

    def add_host(self, host: str) -> None:
        """Add a host node (idempotent)."""
        _check_host_name(host)
        self._graph.add_node(host)

    def add_target(self, host: str) -> None:
        """Mark *host* (added if necessary) as an attack goal."""
        self.add_host(host)
        if host not in self._targets:
            self._targets.append(host)

    def add_entry_point(self, host: str) -> None:
        """Make *host* reachable directly from the external attacker."""
        self.add_host(host)
        self._graph.add_edge(ATTACKER, host)

    def add_reachability(self, src: str, dst: str) -> None:
        """Record that *src* can open connections to *dst*."""
        _check_host_name(src)
        _check_host_name(dst)
        self.add_host(src)
        self.add_host(dst)
        self._graph.add_edge(src, dst)

    def remove_host(self, host: str) -> None:
        """Remove *host* and its edges (e.g. fully patched, unexploitable)."""
        if host not in self._graph:
            raise HarmError(f"unknown host {host!r}")
        self._graph.remove_node(host)
        self._targets = [target for target in self._targets if target != host]

    # -- structure ----------------------------------------------------------------

    @property
    def hosts(self) -> list[str]:
        """All host names (attacker excluded) in insertion order."""
        return [node for node in self._graph.nodes() if node != ATTACKER]

    @property
    def targets(self) -> list[str]:
        """The attack-goal hosts."""
        return list(self._targets)

    def entry_points(self) -> list[str]:
        """Hosts directly reachable from the attacker."""
        return self._graph.successors(ATTACKER)

    def reachable_hosts(self, src: str) -> list[str]:
        """Hosts directly reachable from *src*."""
        if src not in self._graph:
            raise HarmError(f"unknown host {src!r}")
        return self._graph.successors(src)

    def has_host(self, host: str) -> bool:
        """Whether *host* is present."""
        return host != ATTACKER and self._graph.has_node(host)

    def number_of_hosts(self) -> int:
        """Host count (attacker excluded)."""
        return self._graph.number_of_nodes() - 1

    # -- analysis -----------------------------------------------------------------

    def attack_paths(self, max_length: int | None = None) -> list[list[str]]:
        """Every simple path from the attacker to any target.

        The attacker node itself is stripped from the returned paths, so a
        path reads like the paper's ``ap1 = {dns1, web1, app1, db1}``.
        A graph with no targets (every goal host fully patched) has no
        attack paths.
        """
        if not self._targets:
            return []
        return [path[1:] for path in self.iter_attack_paths(max_length)]

    def iter_attack_paths(
        self, max_length: int | None = None
    ) -> Iterator[list[str]]:
        """Iterate attacker-rooted paths (attacker node included)."""
        return all_simple_paths(self._graph, ATTACKER, self._targets, max_length)

    def number_of_attack_paths(self) -> int:
        """Paper metric NoAP."""
        return len(self.attack_paths())

    def number_of_entry_points(self) -> int:
        """Paper metric NoEP."""
        return len(self.entry_points())

    def restricted_to(self, keep: Iterable[str]) -> "AttackGraph":
        """A new graph induced on *keep* (attacker retained).

        Used after patching: hosts with no remaining exploitable
        vulnerability drop out of the attack surface.
        """
        keep_set = set(keep) | {ATTACKER}
        restricted = AttackGraph()
        restricted._graph = self._graph.subgraph(keep_set)
        if ATTACKER not in restricted._graph:
            restricted._graph.add_node(ATTACKER)
        restricted._targets = [t for t in self._targets if t in keep_set]
        return restricted

    def to_digraph(self) -> DiGraph:
        """A copy of the underlying directed graph (attacker included)."""
        return self._graph.copy()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"AttackGraph(hosts={self.number_of_hosts()}, "
            f"targets={self._targets!r})"
        )


def _check_host_name(host: str) -> None:
    if not isinstance(host, str) or not host:
        raise HarmError(f"host name must be a non-empty string, got {host!r}")
    if host == ATTACKER:
        raise HarmError(f"{ATTACKER!r} is reserved for the attacker node")

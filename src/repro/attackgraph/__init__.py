"""Attack graphs: the upper layer of the two-layered HARM.

Nodes are hosts (plus a distinguished attacker node); edges encode
network reachability.  Attack paths are simple paths from the attacker to
a target host.
"""

from repro.attackgraph.graph import ATTACKER, AttackGraph

__all__ = ["AttackGraph", "ATTACKER"]

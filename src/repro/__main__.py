"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``reproduce``
    Print every table/figure of the paper (the full pipeline).
``bundle --out DIR``
    Write the experiment artifacts (tables, figure data, CSV) to DIR.
``designs``
    Print the five paper designs with their after-patch metrics and the
    Eq. (3)/(4) region selections.
``sweep``
    Evaluate a whole design space through the sweep engine, optionally
    in parallel, as a table or JSON.  The default space is roles x
    replica counts; ``--variants`` switches to the heterogeneous
    (software-diversity) space, enumerating variant-count assignments
    from the paper's variant pools and the diversity database.
``timeline``
    Patch-timeline curves over a design space: transient COA, patch
    completion probability and security-exposure curves on a shared
    time grid, one batched uniformisation pass per design.  Takes the
    same space/executor options as ``sweep`` plus the time grid
    (``--horizon``/``--points`` or an explicit ``--times`` list) and an
    optional staged rollout: ``--campaign FILE`` (JSON spec) or
    ``--phases name:mult[:trigger[:canary]],...`` shorthand.  A staged
    campaign uniformises once per phase and carries the state vector
    across phase boundaries; a single-phase multiplier-1 campaign is
    byte-identical to the stationary timeline.
``serve``
    Resident evaluation service: a bounded pool of warm sweep-engine
    *lanes* (persistent worker pools, retained shared-memory
    aggregates, result caches), one per evaluation context, behind a
    versioned HTTP/JSON API.  ``POST /v1/sweep`` and ``POST
    /v1/timeline`` take one request envelope (space / options /
    priority / deadline_ms / stream) and answer with exactly the
    corresponding ``--json`` payload — or stream it chunk by chunk as
    newline-delimited JSON; ``GET /v1/healthz`` reports liveness,
    per-lane state and request counters.  The unversioned paths keep
    working with the flat legacy fields plus a ``Deprecation`` header.
``shard``
    Coordinator for horizontal scale-out: partition a design space
    across several running ``serve`` processes by the stable design
    cache-key hash, fan the requests out with retry/failover, and
    merge the partial payloads byte-identically to a single-process
    run.
``cache``
    Maintain a ``--cache`` sqlite file: ``stats``, ``purge``
    (everything, one scope or one context fingerprint) and ``trim``
    (LRU-evict down to entry/size bounds).

Observability
-------------
Every command accepts a global ``-v``/``--verbose`` flag (repeat for
debug level) that turns on the module loggers — context builds, warm
shared-context reuse, pool recycles, cache writes.  ``sweep`` and
``timeline`` accept ``--trace FILE``: span tracing is enabled for the
run and a Chrome trace-event JSON file (open it in Perfetto or
``chrome://tracing``) is written on success, with worker-side spans
from process-pool chunks merged into the one timeline.  ``serve``
exposes the process-wide metrics registry on ``GET /metrics`` — JSON
by default, Prometheus text exposition when the ``Accept`` header asks
for ``text/plain`` — and emits a structured JSON access log line per
request on stderr.  Results are byte-identical with instrumentation on
or off.

Resilience
----------
``sweep`` and ``timeline`` accept ``--deadline MS`` (wall-clock budget,
checked between chunk dispatches; exceeded deadlines exit 3) and
``--metrics FILE`` (JSON snapshot of the process metrics registry after
the run).  Worker crashes, cache lock contention and iterative-solver
failures are retried/degraded/circuit-broken rather than failing the
run; ``REPRO_FAULTS`` injects deterministic faults to exercise those
paths (see the ``--help`` epilog).  ``serve`` sheds load with 503 +
``Retry-After`` once ``--max-queue`` distinct computations are in
flight, and drains gracefully on SIGTERM (``--drain-grace``).

Both space commands accept ``--cache PATH``: a sqlite file that
persists results across invocations, so re-running a sweep or timeline
only pays for designs not seen before.  They also accept
``--shared-memory`` (default) / ``--no-shared-memory``: with sharing
on, the lower-layer aggregate table and the canonical per-pattern SRN
structures are solved once and shared — published to process-pool
workers over ``multiprocessing.shared_memory`` — instead of being
re-solved per chunk; results are byte-identical either way.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from collections.abc import Sequence

__all__ = ["main"]


def _reproduce(_: argparse.Namespace) -> int:
    from repro.enterprise import example_network_design, paper_case_study
    from repro.evaluation import AvailabilityEvaluator, SecurityEvaluator
    from repro.evaluation.report import (
        aggregated_rates_table,
        security_metrics_table,
        vulnerability_table,
    )
    from repro.patching import CriticalVulnerabilityPolicy

    case_study = paper_case_study()
    policy = CriticalVulnerabilityPolicy()
    example = example_network_design()
    print("[Table I]")
    print(vulnerability_table(case_study))
    security = SecurityEvaluator(case_study)
    print("\n[Table II]")
    print(
        security_metrics_table(
            security.before_patch(example),
            security.after_patch(example, policy),
        )
    )
    availability = AvailabilityEvaluator(case_study, policy)
    print("\n[Table V]")
    print(aggregated_rates_table(availability.aggregates_for(example)))
    print("\n[Table VI]")
    print(f"COA({example.label}) = {availability.coa(example):.6f}")
    return 0


def _designs(_: argparse.Namespace) -> int:
    from repro.enterprise import paper_designs
    from repro.evaluation import evaluate_designs, satisfying_designs
    from repro.evaluation.report import design_comparison_table
    from repro.evaluation.requirements import (
        PAPER_REGION_1_MULTI_METRIC,
        PAPER_REGION_1_TWO_METRIC,
        PAPER_REGION_2_MULTI_METRIC,
        PAPER_REGION_2_TWO_METRIC,
    )

    evaluations = evaluate_designs(paper_designs())
    print(design_comparison_table(evaluations))
    for label, region in (
        ("Eq.3 region 1", PAPER_REGION_1_TWO_METRIC),
        ("Eq.3 region 2", PAPER_REGION_2_TWO_METRIC),
        ("Eq.4 region 1", PAPER_REGION_1_MULTI_METRIC),
        ("Eq.4 region 2", PAPER_REGION_2_MULTI_METRIC),
    ):
        names = [e.label for e in satisfying_designs(evaluations, region)]
        print(f"{label}: {', '.join(names) if names else '(none)'}")
    return 0


def _parse_roles(spec: str) -> list[str]:
    return list(
        dict.fromkeys(role.strip() for role in spec.split(",") if role.strip())
    )


def _parse_scaled(spec: str) -> tuple[int, int]:
    """Parse a --scaled HxT spec into (hosts_per_tier, tiers)."""
    from repro.errors import ValidationError

    parts = spec.lower().replace("x", ",").split(",")
    try:
        hosts, tiers = (int(part) for part in parts)
    except ValueError:
        raise ValidationError(
            f"--scaled expects HOSTSxTIERS (e.g. 9x4), got {spec!r}"
        ) from None
    return hosts, tiers


def _space_engine_and_designs(args: argparse.Namespace, roles):
    """Build the sweep engine and enumerate the requested design space.

    Shared between ``sweep`` and ``timeline``: the homogeneous replica
    space by default, the heterogeneous variant space with
    ``--variants``, or a single generated large design with ``--scaled``
    (which also returns the generated tier names in place of *roles*).
    Raises ``ReproError`` on domain errors (mapped to exit code 2 by the
    callers).  Returns ``(engine, designs, roles)``.
    """
    from repro.errors import ValidationError
    from repro.evaluation.engine import SweepEngine
    from repro.evaluation.sweep import (
        enumerate_designs,
        enumerate_heterogeneous_designs,
    )

    cache_path = getattr(args, "cache", None)
    if getattr(args, "scaled", None):
        if args.variants:
            raise ValidationError(
                "--scaled and --variants are mutually exclusive"
            )
        from repro.enterprise import scaled_case_study

        hosts, tiers = _parse_scaled(args.scaled)
        case_study, design = scaled_case_study(hosts, tiers)
        engine = SweepEngine(
            case_study=case_study,
            executor=args.executor,
            max_workers=args.jobs,
            structure_sharing=args.shared_memory,
            cache_path=cache_path,
        )
        return engine, [design], design.roles
    if args.variants:
        from repro.enterprise import paper_variant_space
        from repro.vulnerability.diversity import diversity_database

        space = paper_variant_space()
        unknown = [role for role in roles if role not in space]
        if unknown:
            raise ValidationError(
                f"no variant pool for roles {unknown}; "
                f"choose from {sorted(space)}"
            )
        engine = SweepEngine(
            executor=args.executor,
            max_workers=args.jobs,
            database=diversity_database(),
            structure_sharing=args.shared_memory,
            cache_path=cache_path,
        )
        designs = enumerate_heterogeneous_designs(
            roles,
            {role: space[role] for role in roles},
            max_replicas=args.max_replicas,
            max_total=args.max_total,
        )
        return engine, designs, roles
    else:
        engine = SweepEngine(
            executor=args.executor,
            max_workers=args.jobs,
            structure_sharing=args.shared_memory,
            cache_path=cache_path,
        )
        designs = enumerate_designs(
            roles, max_replicas=args.max_replicas, max_total=args.max_total
        )
    return engine, designs, roles


def _start_trace(args: argparse.Namespace) -> bool:
    """Enable span tracing when ``--trace FILE`` was given."""
    if not getattr(args, "trace", None):
        return False
    from repro.observability import tracing

    tracing.enable()
    tracing.drain()  # a fresh trace per invocation
    return True


def _finish_trace(args: argparse.Namespace) -> None:
    """Write the accumulated spans as Chrome trace-event JSON."""
    from repro.observability import tracing, write_chrome_trace

    count = write_chrome_trace(args.trace)
    tracing.disable()
    print(f"trace: wrote {count} span(s) to {args.trace}", file=sys.stderr)


def _deadline_from_args(args: argparse.Namespace):
    """The ``--deadline MS`` budget as a started clock, or ``None``.

    The clock starts here — immediately before the engine call — so the
    budget covers evaluation, not argument parsing or imports.
    """
    ms = getattr(args, "deadline", None)
    if ms is None:
        return None
    from repro.errors import ValidationError
    from repro.resilience import Deadline

    try:
        return Deadline.after_ms(ms)
    except ValueError as exc:
        raise ValidationError(f"--deadline: {exc}") from None


def _dump_metrics(args: argparse.Namespace) -> None:
    """Write the process metrics registry as JSON (``--metrics FILE``)."""
    path = getattr(args, "metrics", None)
    if not path:
        return
    from repro.observability import REGISTRY

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(REGISTRY.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"metrics: wrote registry snapshot to {path}", file=sys.stderr)


def _sweep(args: argparse.Namespace) -> int:
    from repro.evaluation.report import design_comparison_table

    from repro.errors import DeadlineExceeded, ReproError

    roles = _parse_roles(args.roles)
    if not roles and not args.scaled:
        print("no roles given", file=sys.stderr)
        return 2
    tracing_on = _start_trace(args)
    try:
        engine, designs, roles = _space_engine_and_designs(args, roles)
        evaluations = engine.evaluate(
            designs, deadline=_deadline_from_args(args)
        )
    except DeadlineExceeded as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        _dump_metrics(args)
        return 3
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    if tracing_on:
        _finish_trace(args)
    _dump_metrics(args)
    if args.json:
        # The shared schema module, so `repro sweep --json`, a `repro
        # serve` response and a `repro shard` merge agree by
        # construction.
        from repro.evaluation.api import sweep_response

        payload = sweep_response(
            roles,
            args.max_replicas,
            args.max_total,
            bool(args.variants),
            engine.executor.name,
            evaluations,
        )
        print(json.dumps(payload, indent=2))
    else:
        front = {id(e) for e in engine.pareto(evaluations)}
        print(design_comparison_table(evaluations))
        labels = [e.label for e in evaluations if id(e) in front]
        print(f"\nPareto front (after patch): {', '.join(labels)}")
    return 0


def _campaign_from_args(args: argparse.Namespace):
    """The PatchCampaign selected by --campaign/--phases, or ``None``."""
    from repro.patching import PatchCampaign

    if args.campaign and args.phases:
        from repro.errors import ValidationError

        raise ValidationError(
            "--campaign and --phases are mutually exclusive"
        )
    if args.campaign:
        return PatchCampaign.from_json_file(args.campaign)
    if args.phases:
        return PatchCampaign.parse(args.phases)
    return None


def _timeline(args: argparse.Namespace) -> int:
    from repro.errors import DeadlineExceeded, ReproError
    from repro.evaluation.timeline import default_time_grid

    roles = _parse_roles(args.roles)
    if not roles and not args.scaled:
        print("no roles given", file=sys.stderr)
        return 2
    if args.times:
        try:
            times = tuple(
                float(part) for part in args.times.split(",") if part.strip()
            )
            if not times:
                raise ValueError("empty time list")
        except ValueError as exc:
            print(f"timeline failed: bad time grid ({exc})", file=sys.stderr)
            return 2
    tracing_on = _start_trace(args)
    try:
        if not args.times:
            times = default_time_grid(args.horizon, args.points)
        campaign = _campaign_from_args(args)
        engine, designs, roles = _space_engine_and_designs(args, roles)
        timelines = engine.timeline(
            designs,
            times,
            campaign=campaign,
            method=args.method,
            deadline=_deadline_from_args(args),
        )
    except DeadlineExceeded as exc:
        print(f"timeline failed: {exc}", file=sys.stderr)
        _dump_metrics(args)
        return 3
    except ReproError as exc:
        print(f"timeline failed: {exc}", file=sys.stderr)
        return 2
    if tracing_on:
        _finish_trace(args)
    _dump_metrics(args)
    if args.json:
        from repro.evaluation.api import timeline_response

        payload = timeline_response(
            roles,
            args.max_replicas,
            args.max_total,
            bool(args.variants),
            engine.executor.name,
            campaign,
            times,
            timelines,
        )
        print(json.dumps(payload, indent=2))
    else:
        end = times[-1]
        if campaign is not None:
            print(f"campaign {campaign}")
        print(
            f"{'design':<42} {'srv':>3} {'MTTPC (h)':>10} {'min COA':>9} "
            f"{'COA(end)':>9} {'P(done)':>8}"
        )
        for timeline in timelines:
            mttc = timeline.mean_time_to_completion
            mttc_text = f"{mttc:10.1f}" if mttc != float("inf") else "       inf"
            print(
                f"{timeline.label:<42} {timeline.design.total_servers:>3} "
                f"{mttc_text} {timeline.min_coa:9.6f} "
                f"{timeline.coa[-1]:9.6f} {timeline.completion_probability[-1]:8.4f}"
            )
        print(f"\n{len(timelines)} designs, grid 0..{end:g} h x {len(times)} points")
    return 0


def _cache(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.evaluation.cache import PersistentEvaluationCache

    try:
        with PersistentEvaluationCache(args.cache) as cache:
            if args.cache_command == "stats":
                stats = cache.stats()
                if args.json:
                    print(json.dumps(stats, indent=2))
                else:
                    print(f"cache {stats['path']}")
                    print(
                        f"  {stats['entries']} entries, "
                        f"{stats['bytes'] / 1e6:.2f} MB"
                    )
                    for scope, info in stats["scopes"].items():
                        print(
                            f"  {scope:<12} {info['entries']:>6} entries  "
                            f"{info['bytes'] / 1e6:8.2f} MB"
                        )
            elif args.cache_command == "purge":
                removed = cache.purge(
                    fingerprint=args.fingerprint, scope=args.scope
                )
                print(f"purged {removed} entries")
            elif args.cache_command == "trim":
                if args.max_entries is None and args.max_mb is None:
                    print(
                        "trim needs --max-entries and/or --max-mb",
                        file=sys.stderr,
                    )
                    return 2
                removed = cache.trim(
                    max_entries=args.max_entries,
                    max_bytes=(
                        int(args.max_mb * 1e6)
                        if args.max_mb is not None
                        else None
                    ),
                )
                print(f"evicted {removed} least-recently-used entries")
    except ReproError as exc:
        print(f"cache failed: {exc}", file=sys.stderr)
        return 2
    return 0


def _serve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.evaluation.service import EvaluationService

    try:
        service = EvaluationService(
            executor=args.executor,
            max_workers=args.jobs,
            structure_sharing=args.shared_memory,
            cache_path=args.cache,
            lanes=args.lanes,
            max_designs=args.max_designs,
            max_queue=args.max_queue if args.max_queue > 0 else None,
            retry_after=args.retry_after,
            drain_grace=args.drain_grace,
        )
    except ReproError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 2
    try:
        with service:
            service.run(host=args.host, port=args.port)
    except KeyboardInterrupt:
        pass
    except (ReproError, OSError) as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 2
    return 0


def _shard(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.evaluation.sharding import ShardCoordinator

    roles = _parse_roles(args.roles)
    if not roles and not args.scaled:
        print("no roles given", file=sys.stderr)
        return 2
    endpoints = [
        part.strip() for part in args.endpoints.split(",") if part.strip()
    ]
    fields: dict = {"roles": roles, "max_replicas": args.max_replicas}
    if args.max_total is not None:
        fields["max_total"] = args.max_total
    if args.variants:
        fields["variants"] = True
    if args.scaled:
        fields["scaled"] = args.scaled
        fields.pop("roles")
    if args.deadline is not None:
        fields["deadline_ms"] = args.deadline
    if args.priority != "interactive":
        fields["priority"] = args.priority
    try:
        coordinator = ShardCoordinator(endpoints, timeout=args.timeout)
        if args.timeline:
            if args.times:
                fields["times"] = [
                    float(part)
                    for part in args.times.split(",")
                    if part.strip()
                ]
            else:
                fields["horizon"] = args.horizon
                fields["points"] = args.points
            if args.phases:
                fields["phases"] = args.phases
            if args.method != "uniformisation":
                fields["method"] = args.method
            payload = coordinator.timeline(**fields)
        else:
            payload = coordinator.sweep(**fields)
    except ReproError as exc:
        print(f"shard failed: {exc}", file=sys.stderr)
        # A blown deadline_ms surfaces as the service's 504 envelope in
        # the client error; keep the CLI deadline exit-code contract.
        return 3 if "deadline_exceeded" in str(exc) else 2
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        front = [d["label"] for d in payload["designs"] if d.get("pareto")]
        print(
            f"{payload['design_count']} designs merged from "
            f"{coordinator.shard_count} shard(s)"
        )
        if front:
            print(f"Pareto front (after patch): {', '.join(front)}")
    return 0


def _bundle(args: argparse.Namespace) -> int:
    from repro.evaluation import write_experiment_bundle

    paths = write_experiment_bundle(args.out)
    for path in paths:
        print(path)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI dispatcher; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of Ge, Kim & Kim (DSN-W 2017): security and "
            "availability of redundancy designs under security patching."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "structure sharing:\n"
            "  'sweep' and 'timeline' run the structure-sharing pipeline by\n"
            "  default (--shared-memory): the per-role Table V aggregates and\n"
            "  one canonical SRN structure per transition pattern (counts\n"
            "  multiset) are solved once and reused across the whole design\n"
            "  space; with --executor process they are published to the pool\n"
            "  workers through multiprocessing.shared_memory so chunks carry\n"
            "  only designs.  --no-shared-memory re-solves everything per\n"
            "  chunk (the benchmark baseline); results are byte-identical\n"
            "  either way.  Persistent result caches (--cache PATH) are\n"
            "  maintained with 'python -m repro cache stats|purge|trim'.\n"
            "\n"
            "staged rollouts:\n"
            "  'timeline' models staged patch campaigns (canary -> ramp ->\n"
            "  fleet) with --campaign FILE (JSON spec) or --phases\n"
            "  name:mult[:trigger[:canary]],...: each phase scales every\n"
            "  patch rate by its multiplier and ends after a fixed duration\n"
            "  (trigger '48' = 48 h) or once the expected patched fraction\n"
            "  reaches a threshold (trigger '25%' ); the final phase must\n"
            "  omit its trigger (it runs forever).\n"
            "  A canary host count caps concurrent patching fleet-wide.  The\n"
            "  solver uniformises once per phase and carries the state\n"
            "  vector across boundaries, so a staged curve costs one batch\n"
            "  pass per phase; '--phases fleet:1.0' is byte-identical to the\n"
            "  stationary timeline.\n"
            "\n"
            "large state spaces:\n"
            "  --scaled HxT generates a chain enterprise of T tiers with H\n"
            "  replicas each ((H+1)^T availability states; 9x4 = 10,000) and\n"
            "  evaluates that single design through the same engine stack.\n"
            "  'timeline --method' picks the transient backend: exact\n"
            "  uniformisation (default, bit-identical anchored iterates),\n"
            "  krylov (scipy expm_multiply propagation), adaptive\n"
            "  (steady-state-detecting uniformisation, error bounded by the\n"
            "  solver tolerance) or auto (exact up to 5000 states, adaptive\n"
            "  above).  REPRO_DENSE_THRESHOLD overrides the dense/sparse\n"
            "  cutoff; steady solves above 5000 states use a preconditioned\n"
            "  iterative path automatically.\n"
            "\n"
            "observability:\n"
            "  -v/--verbose logs engine decisions (context builds, warm\n"
            "  reuse, pool recycles, cache writes) to stderr; repeat for\n"
            "  debug.  'sweep'/'timeline' --trace FILE writes a Chrome\n"
            "  trace-event JSON of the run's spans (Perfetto-viewable),\n"
            "  including worker-side solver spans merged from process\n"
            "  pools.  'serve' reports the process-wide metrics registry\n"
            "  on GET /metrics (JSON, or Prometheus text with Accept:\n"
            "  text/plain) and logs one JSON access line per request.\n"
            "  Results are byte-identical with instrumentation on or off.\n"
            "\n"
            "resilience:\n"
            "  'sweep'/'timeline' --deadline MS bounds the wall clock of a\n"
            "  run: the budget is checked between chunk dispatches and an\n"
            "  exceeded deadline exits with code 3 (other domain errors\n"
            "  stay 2).  Transient faults are retried with deterministic\n"
            "  exponential backoff: a crashed process-pool worker recycles\n"
            "  the pool and replays the batch; a locked sqlite cache\n"
            "  retries, then degrades to memory-only for the rest of the\n"
            "  process (repro_cache_degraded gauge) instead of failing the\n"
            "  run.  Repeated iterative steady-state failures open a\n"
            "  circuit breaker that routes solves to the direct path\n"
            "  (REPRO_BREAKER_THRESHOLD / REPRO_BREAKER_RECOVERY tune it).\n"
            "  'serve' answers 503 + Retry-After when saturated\n"
            "  (--max-queue) or draining, and on SIGTERM finishes in-flight\n"
            "  requests (up to --drain-grace seconds) before exiting 0;\n"
            "  GET /healthz reports draining/queue/breaker/cache state.\n"
            "  'shard' retries a failed shard request against the other\n"
            "  endpoints (deterministic backoff) and, when the services\n"
            "  share a --cache file, a survivor serves the dead shard's\n"
            "  finished designs from the shared sqlite result tier.\n"
            "  REPRO_FAULTS='point:action@n;...' injects deterministic\n"
            "  faults for chaos testing (points: cache.read, cache.write,\n"
            "  solver.iterative, solver.transient, shared.attach,\n"
            "  worker.chunk, shard.request; actions: error, fail, kill)\n"
            "  — each fault\n"
            "  fires exactly once fleet-wide at the n-th hit of its\n"
            "  point, and recovered runs are byte-identical to clean\n"
            "  ones.  --metrics FILE snapshots the registry (recycles,\n"
            "  degradations, breaker opens, injected faults) for\n"
            "  assertions in CI."
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help=(
            "log engine/cache/pool decisions to stderr "
            "(-v: info, -vv: debug)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "reproduce", help="print the paper's tables for the example network"
    ).set_defaults(handler=_reproduce)
    commands.add_parser(
        "designs", help="score the five paper designs and the Eq.3/4 regions"
    ).set_defaults(handler=_designs)
    bundle = commands.add_parser(
        "bundle", help="write the experiment artifacts to a directory"
    )
    bundle.add_argument("--out", default="artifacts", help="output directory")
    bundle.set_defaults(handler=_bundle)
    def add_space_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--roles",
            default="dns,web,app,db",
            help="comma-separated role names (default: dns,web,app,db)",
        )
        command.add_argument(
            "--max-replicas",
            type=int,
            default=2,
            help="replica cap per role (default: 2)",
        )
        command.add_argument(
            "--max-total",
            type=int,
            default=None,
            help="optional cap on total server count",
        )
        command.add_argument(
            "--variants",
            action="store_true",
            help=(
                "use the heterogeneous space: enumerate variant-count "
                "assignments from the paper's diversity stacks instead of "
                "plain replica counts"
            ),
        )
        command.add_argument(
            "--executor",
            choices=("serial", "thread", "process"),
            default="serial",
            help="sweep-engine executor (default: serial)",
        )
        command.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker count for the thread/process pool executors",
        )
        command.add_argument(
            "--cache",
            default=None,
            metavar="PATH",
            help=(
                "sqlite file persisting results across invocations; "
                "repeated runs only pay for designs not cached yet "
                "(maintain it with 'python -m repro cache')"
            ),
        )
        command.add_argument(
            "--shared-memory",
            action=argparse.BooleanOptionalAction,
            default=True,
            help=(
                "structure-sharing pipeline: solve the lower-layer "
                "aggregates and the per-pattern SRN structures once and "
                "share them (via multiprocessing.shared_memory for the "
                "process executor) instead of re-solving per chunk; "
                "results are byte-identical either way (default: on)"
            ),
        )
        command.add_argument(
            "--scaled",
            default=None,
            metavar="HxT",
            help=(
                "evaluate one generated chain enterprise of TIERS tiers "
                "with HOSTS replicas each (e.g. 9x4: a 10,000-state "
                "availability model) instead of enumerating --roles; the "
                "paper's role stacks are reused cyclically"
            ),
        )
        command.add_argument(
            "--json", action="store_true", help="emit JSON instead of a table"
        )
        command.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help=(
                "record span tracing for the run and write a Chrome "
                "trace-event JSON file (viewable in Perfetto); "
                "process-pool worker spans are merged in"
            ),
        )
        command.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="MS",
            help=(
                "abort the run once this many milliseconds of wall "
                "clock are spent (checked between chunk dispatches); "
                "an exceeded deadline exits with code 3 instead of 2"
            ),
        )
        command.add_argument(
            "--metrics",
            default=None,
            metavar="FILE",
            help=(
                "write the process metrics registry (counters, gauges, "
                "histograms — pool recycles, cache degradation, breaker "
                "opens, injected faults) as JSON after the run"
            ),
        )

    sweep = commands.add_parser(
        "sweep", help="evaluate a whole design space through the sweep engine"
    )
    add_space_options(sweep)
    sweep.set_defaults(handler=_sweep)

    timeline = commands.add_parser(
        "timeline",
        help=(
            "patch-timeline curves (transient COA, completion probability, "
            "security exposure) over a design space"
        ),
    )
    add_space_options(timeline)
    timeline.add_argument(
        "--horizon",
        type=float,
        default=720.0,
        help="time-grid end in hours (default: 720, the monthly cycle)",
    )
    timeline.add_argument(
        "--points",
        type=int,
        default=24,
        help="number of evenly spaced grid points (default: 24)",
    )
    timeline.add_argument(
        "--times",
        default=None,
        help="explicit comma-separated times in hours (overrides the grid)",
    )
    timeline.add_argument(
        "--campaign",
        default=None,
        metavar="FILE",
        help=(
            "staged-rollout JSON spec: {'name': ..., 'phases': [{'name', "
            "'rate_multiplier', 'duration_hours' | 'completion_fraction', "
            "'canary_hosts'}, ...]}"
        ),
    )
    timeline.add_argument(
        "--method",
        choices=("auto", "uniformisation", "krylov", "adaptive"),
        default="uniformisation",
        help=(
            "transient propagation backend: exact uniformisation "
            "(default), Krylov expm_multiply, steady-state-detecting "
            "adaptive uniformisation, or size-dispatching auto "
            "(exact up to 5000 states, adaptive above)"
        ),
    )
    timeline.add_argument(
        "--phases",
        default=None,
        metavar="SPEC",
        help=(
            "inline campaign shorthand name:mult[:trigger[:canary]],... — "
            "a plain trigger is a duration in hours, a %%-suffixed one a "
            "completion fraction (e.g. canary:0.1:48,fleet:1.0)"
        ),
    )
    timeline.set_defaults(handler=_timeline)

    serve = commands.add_parser(
        "serve",
        help=(
            "resident evaluation service: a warm sweep engine (persistent "
            "worker pool + shared-memory aggregates + result caches) "
            "behind an HTTP/JSON API"
        ),
        description=(
            "Serve POST /v1/sweep, POST /v1/timeline, GET /v1/healthz and "
            "GET /v1/metrics over HTTP/1.1.  /v1 bodies use one envelope "
            "({'space': {...}, 'options': {...}, 'priority', "
            "'deadline_ms', 'stream'}); the unversioned paths keep the "
            "flat legacy fields but answer with a Deprecation header.  "
            "Responses are byte-identical to the corresponding --json "
            "output.  Requests run on a bounded pool of warm engine "
            "lanes keyed by evaluation context (--lanes), interactive "
            "requests preempt batch ones at chunk boundaries, stream: "
            "true answers newline-delimited JSON chunk by chunk, and "
            "options.shard serves one hash partition of the space (the "
            "server half of 'repro shard').  Identical in-flight "
            "requests share one computation, repeats are answered from "
            "a response memory, and every lane's pool and shared-memory "
            "state stays warm across requests."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8351,
        help="TCP port (default: 8351; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="process",
        help="engine executor; thread/process pools are persistent "
        "(default: process)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for the thread/process pool executors",
    )
    serve.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="sqlite file persisting results across restarts",
    )
    serve.add_argument(
        "--shared-memory",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="structure-sharing pipeline (see sweep --help; default: on)",
    )
    serve.add_argument(
        "--lanes",
        type=int,
        default=4,
        help=(
            "bound on concurrently-warm engine lanes (one per "
            "evaluation context: case study, scaled space or campaign "
            "fingerprint); least-recently-used idle lanes are evicted "
            "to admit new contexts (default: 4)"
        ),
    )
    serve.add_argument(
        "--max-designs",
        type=int,
        default=512,
        help="per-request design-count budget (default: 512)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help=(
            "saturation bound: new computations beyond this many "
            "distinct in-flight keys are answered 503 + Retry-After "
            "instead of queueing; 0 means unbounded (default: 64)"
        ),
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint sent with 503 rejections (default: 1)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "on SIGTERM, stop admitting new computations and wait up "
            "to this long for in-flight requests before exiting "
            "(default: 30)"
        ),
    )
    serve.set_defaults(handler=_serve)

    shard = commands.add_parser(
        "shard",
        help=(
            "fan a design space out across running 'repro serve' "
            "processes and merge the partial results byte-identically"
        ),
        description=(
            "Partition the enumerated design space across N service "
            "processes by the stable design cache-key hash (one /v1 "
            "request per shard with options.shard = {index, count}), "
            "fail over to surviving endpoints on errors, and merge the "
            "partial payloads into the exact single-process payload "
            "(designs re-interleaved in enumeration order, the Pareto "
            "front recomputed over the merged set).  Point the services "
            "at one shared --cache file to serve a killed shard's "
            "finished designs from the shared result tier."
        ),
    )
    shard.add_argument(
        "--endpoints",
        required=True,
        metavar="HOST:PORT,...",
        help=(
            "comma-separated service endpoints; the shard count is the "
            "endpoint count"
        ),
    )
    shard.add_argument(
        "--roles",
        default="dns,web,app,db",
        help="comma-separated role names (default: dns,web,app,db)",
    )
    shard.add_argument(
        "--max-replicas",
        type=int,
        default=2,
        help="replica cap per role (default: 2)",
    )
    shard.add_argument(
        "--max-total",
        type=int,
        default=None,
        help="optional cap on total server count",
    )
    shard.add_argument(
        "--variants",
        action="store_true",
        help="the heterogeneous variant space (see sweep --help)",
    )
    shard.add_argument(
        "--scaled",
        default=None,
        metavar="HxT",
        help="one generated chain enterprise (see sweep --help)",
    )
    shard.add_argument(
        "--timeline",
        action="store_true",
        help="sharded timeline curves instead of a sweep",
    )
    shard.add_argument(
        "--horizon",
        type=float,
        default=720.0,
        help="timeline grid end in hours (default: 720)",
    )
    shard.add_argument(
        "--points",
        type=int,
        default=24,
        help="timeline grid points (default: 24)",
    )
    shard.add_argument(
        "--times",
        default=None,
        help="explicit comma-separated times in hours (overrides the grid)",
    )
    shard.add_argument(
        "--phases",
        default=None,
        metavar="SPEC",
        help="inline campaign shorthand (see timeline --help)",
    )
    shard.add_argument(
        "--method",
        choices=("auto", "uniformisation", "krylov", "adaptive"),
        default="uniformisation",
        help="timeline transient backend (see timeline --help)",
    )
    shard.add_argument(
        "--priority",
        choices=("interactive", "batch"),
        default="interactive",
        help="request priority on each shard (default: interactive)",
    )
    shard.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "deadline_ms sent with every shard request (each shard "
            "gets the full budget; they run concurrently); an exceeded "
            "deadline exits with code 3"
        ),
    )
    shard.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-request socket timeout (default: 300)",
    )
    shard.add_argument(
        "--json", action="store_true", help="emit the merged JSON payload"
    )
    shard.set_defaults(handler=_shard)

    cache = commands.add_parser(
        "cache",
        help="maintain a persistent evaluation cache (stats, purge, trim)",
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    def add_cache_path(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--cache",
            required=True,
            metavar="PATH",
            help="the sqlite cache file to maintain",
        )

    cache_stats = cache_commands.add_parser(
        "stats", help="entry and size counts, total and per scope"
    )
    add_cache_path(cache_stats)
    cache_stats.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    cache_purge = cache_commands.add_parser(
        "purge",
        help="delete entries (all, one scope, or one context fingerprint)",
    )
    add_cache_path(cache_purge)
    cache_purge.add_argument(
        "--fingerprint",
        default=None,
        help="only entries of this evaluation-context fingerprint",
    )
    cache_purge.add_argument(
        "--scope",
        default=None,
        choices=("evaluation", "timeline"),
        help="only entries of this record kind",
    )
    cache_trim = cache_commands.add_parser(
        "trim", help="evict least-recently-used entries down to bounds"
    )
    add_cache_path(cache_trim)
    cache_trim.add_argument(
        "--max-entries", type=int, default=None, help="keep at most N entries"
    )
    cache_trim.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="keep at most this many megabytes of payload",
    )
    cache.set_defaults(handler=_cache)

    args = parser.parse_args(argv)
    if args.verbose:
        logging.basicConfig(
            level=logging.DEBUG if args.verbose > 1 else logging.INFO,
            format="%(levelname)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

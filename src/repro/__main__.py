"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``reproduce``
    Print every table/figure of the paper (the full pipeline).
``bundle --out DIR``
    Write the experiment artifacts (tables, figure data, CSV) to DIR.
``designs``
    Print the five paper designs with their after-patch metrics and the
    Eq. (3)/(4) region selections.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main"]


def _reproduce(_: argparse.Namespace) -> int:
    from repro.enterprise import example_network_design, paper_case_study
    from repro.evaluation import AvailabilityEvaluator, SecurityEvaluator
    from repro.evaluation.report import (
        aggregated_rates_table,
        security_metrics_table,
        vulnerability_table,
    )
    from repro.patching import CriticalVulnerabilityPolicy

    case_study = paper_case_study()
    policy = CriticalVulnerabilityPolicy()
    example = example_network_design()
    print("[Table I]")
    print(vulnerability_table(case_study))
    security = SecurityEvaluator(case_study)
    print("\n[Table II]")
    print(
        security_metrics_table(
            security.before_patch(example),
            security.after_patch(example, policy),
        )
    )
    availability = AvailabilityEvaluator(case_study, policy)
    print("\n[Table V]")
    print(aggregated_rates_table(availability.aggregates_for(example)))
    print("\n[Table VI]")
    print(f"COA({example.label}) = {availability.coa(example):.6f}")
    return 0


def _designs(_: argparse.Namespace) -> int:
    from repro.enterprise import paper_designs
    from repro.evaluation import evaluate_designs, satisfying_designs
    from repro.evaluation.report import design_comparison_table
    from repro.evaluation.requirements import (
        PAPER_REGION_1_MULTI_METRIC,
        PAPER_REGION_1_TWO_METRIC,
        PAPER_REGION_2_MULTI_METRIC,
        PAPER_REGION_2_TWO_METRIC,
    )

    evaluations = evaluate_designs(paper_designs())
    print(design_comparison_table(evaluations))
    for label, region in (
        ("Eq.3 region 1", PAPER_REGION_1_TWO_METRIC),
        ("Eq.3 region 2", PAPER_REGION_2_TWO_METRIC),
        ("Eq.4 region 1", PAPER_REGION_1_MULTI_METRIC),
        ("Eq.4 region 2", PAPER_REGION_2_MULTI_METRIC),
    ):
        names = [e.label for e in satisfying_designs(evaluations, region)]
        print(f"{label}: {', '.join(names) if names else '(none)'}")
    return 0


def _bundle(args: argparse.Namespace) -> int:
    from repro.evaluation import write_experiment_bundle

    paths = write_experiment_bundle(args.out)
    for path in paths:
        print(path)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI dispatcher; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of Ge, Kim & Kim (DSN-W 2017): security and "
            "availability of redundancy designs under security patching."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "reproduce", help="print the paper's tables for the example network"
    ).set_defaults(handler=_reproduce)
    commands.add_parser(
        "designs", help="score the five paper designs and the Eq.3/4 regions"
    ).set_defaults(handler=_designs)
    bundle = commands.add_parser(
        "bundle", help="write the experiment artifacts to a directory"
    )
    bundle.add_argument("--out", default="artifacts", help="output directory")
    bundle.set_defaults(handler=_bundle)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""Scaled-up enterprise case studies beyond the paper's three tiers.

:func:`scaled_case_study` generates a chain-topology enterprise with an
arbitrary number of tiers and replicas per tier, reusing the paper's
four server-role stacks (DNS / web / application / database products
and attack trees) cyclically.  It is the workload generator behind the
large-state-space solver paths: the availability model of the returned
design is a product of per-tier birth-death pairs, so its state count
is ``(hosts_per_tier + 1) ** tiers`` — 9 hosts over 4 tiers already
gives a 10,000-state chain, an order of magnitude past the 2401-state
paper model, while the security side stays a host-level chain HARM the
existing evaluators handle unchanged.
"""

from __future__ import annotations

from dataclasses import replace

from repro.enterprise.attacker import AttackerModel
from repro.enterprise.casestudy import EnterpriseCaseStudy, paper_case_study
from repro.enterprise.design import RedundancyDesign
from repro.enterprise.topology import NetworkTopology
from repro.errors import ValidationError
from repro.patching.schedule import MONTHLY, PatchSchedule
from repro.vulnerability.catalog import paper_database

__all__ = ["scaled_case_study", "scaled_design"]


def scaled_case_study(
    hosts_per_tier: int = 6,
    tiers: int = 4,
    schedule: PatchSchedule = MONTHLY,
) -> tuple[EnterpriseCaseStudy, RedundancyDesign]:
    """A chain enterprise of *tiers* tiers, *hosts_per_tier* servers each.

    Tier ``k`` is named ``tier01``, ``tier02``, ... and reuses the
    paper's role stacks cyclically (dns, web, app, db, dns, ...): the
    products, attack trees and Table IV component rates all carry over,
    only the topology grows.  The first tier is the attacker's entry,
    the last tier the goal, and each tier reaches the next — the
    paper's Fig. 2 chain, generalised.

    Returns the case study together with the homogeneous
    :class:`RedundancyDesign` deploying *hosts_per_tier* replicas of
    every tier; its availability CTMC has
    ``(hosts_per_tier + 1) ** tiers`` states.
    """
    if not isinstance(tiers, int) or tiers < 1:
        raise ValidationError(f"tiers must be a positive integer, got {tiers!r}")
    if not isinstance(hosts_per_tier, int) or hosts_per_tier < 1:
        raise ValidationError(
            f"hosts_per_tier must be a positive integer, got {hosts_per_tier!r}"
        )
    paper = paper_case_study(schedule=schedule)
    templates = [paper.roles[name] for name in ("dns", "web", "app", "db")]

    names = [f"tier{k + 1:02d}" for k in range(tiers)]
    roles = {
        name: replace(templates[k % len(templates)], name=name)
        for k, name in enumerate(names)
    }
    topology = NetworkTopology(names)
    topology.add_entry_role(names[0])
    for src, dst in zip(names, names[1:]):
        topology.add_role_reachability(src, dst)
    topology.add_target_role(names[-1])

    case_study = EnterpriseCaseStudy(
        roles=roles,
        topology=topology,
        database=paper_database(),
        attacker=AttackerModel(goal_roles=(names[-1],)),
        schedule=schedule,
    )
    return case_study, scaled_design(case_study, hosts_per_tier)


def scaled_design(
    case_study: EnterpriseCaseStudy, hosts_per_tier: int
) -> RedundancyDesign:
    """The homogeneous design with *hosts_per_tier* replicas per role."""
    return RedundancyDesign(
        {name: hosts_per_tier for name in case_study.roles}
    )

"""Enterprise-network modeling and the paper's case study.

:class:`ServerRole` describes one tier (products, attack-tree shape);
:class:`NetworkTopology` captures role-level reachability;
:class:`RedundancyDesign` assigns a replica count to each role; and
:class:`EnterpriseCaseStudy` bundles everything for the paper's example
network, expanding designs into concrete host-level HARMs and
availability models.
"""

from repro.enterprise.attacker import AttackerModel
from repro.enterprise.casestudy import EnterpriseCaseStudy, paper_case_study
from repro.enterprise.design import (
    DesignSpec,
    RedundancyDesign,
    example_network_design,
    paper_designs,
)
from repro.enterprise.heterogeneous import (
    HeterogeneousDesign,
    build_heterogeneous_harm,
    heterogeneous_availability_model,
    paper_variant_space,
    paper_variants,
)
from repro.enterprise.roles import ServerRole
from repro.enterprise.scaled import scaled_case_study, scaled_design
from repro.enterprise.topology import NetworkTopology

__all__ = [
    "ServerRole",
    "NetworkTopology",
    "AttackerModel",
    "DesignSpec",
    "RedundancyDesign",
    "paper_designs",
    "example_network_design",
    "EnterpriseCaseStudy",
    "paper_case_study",
    "scaled_case_study",
    "scaled_design",
    "HeterogeneousDesign",
    "build_heterogeneous_harm",
    "heterogeneous_availability_model",
    "paper_variants",
    "paper_variant_space",
]

"""Heterogeneous redundancy: mixing software variants within a tier.

Implements the paper's §V future-work item: a
:class:`HeterogeneousDesign` assigns replica counts per *variant* (a
:class:`ServerRole` describing an alternative stack), and the builders
expand it into a host-level HARM and a variant-aware availability model.

Security intuition: with identical replicas, compromising one web server
strategy compromises both; with diverse stacks an attacker needs a
separate exploit per variant, and an exploit for one stack opens only
that stack's paths.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import replace

from repro._validation import check_positive_int
from repro.attacktree.tree import BranchSpec
from repro.availability.aggregation import ServiceAggregate, aggregate_service
from repro.availability.heterogeneous import HeterogeneousAvailabilityModel
from repro.availability.parameters import ComponentRates
from repro.enterprise.casestudy import EnterpriseCaseStudy, variant_vulnerabilities
from repro.enterprise.roles import ServerRole
from repro.errors import EvaluationError, ValidationError
from repro.harm import Harm, build_harm
from repro.patching.policy import PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase
from repro.vulnerability.model import Vulnerability

__all__ = [
    "HeterogeneousDesign",
    "build_heterogeneous_harm",
    "check_design_kind",
    "heterogeneous_availability_model",
    "paper_variants",
    "paper_variant_space",
]


def check_design_kind(design: object) -> None:
    """Reject :class:`DesignSpec` implementations no evaluator knows.

    The evaluators dispatch on the two concrete spec kinds; an unknown
    implementation must fail loudly here rather than silently fall into
    the homogeneous code path and produce plausible-but-wrong metrics.
    """
    from repro.enterprise.design import RedundancyDesign

    if not isinstance(design, (RedundancyDesign, HeterogeneousDesign)):
        raise EvaluationError(
            f"unknown design kind {type(design).__name__!r}; the evaluation "
            "pipeline dispatches on RedundancyDesign and HeterogeneousDesign"
        )


def paper_variants() -> dict[str, ServerRole]:
    """Variant definitions for diversity studies on the paper's network.

    Primary variants mirror the paper's four roles (same products, same
    tree shapes, names suffixed with the stack); alternatives come from
    :mod:`repro.vulnerability.diversity`.  The nginx tree mirrors the
    paper's web-tree shape: a remote critical OR an (information leak AND
    local escalation) chain.
    """
    from repro.enterprise.casestudy import paper_case_study
    from repro.vulnerability.diversity import (
        PRODUCT_NGINX,
        PRODUCT_POSTGRES,
        PRODUCT_UBUNTU,
    )

    roles = paper_case_study().roles
    return {
        "dns_ms": ServerRole(
            "dns_ms",
            roles["dns"].operating_system,
            roles["dns"].application,
            roles["dns"].attack_tree_spec,
        ),
        "web_apache": ServerRole(
            "web_apache",
            roles["web"].operating_system,
            roles["web"].application,
            roles["web"].attack_tree_spec,
        ),
        "web_nginx": ServerRole(
            "web_nginx",
            PRODUCT_UBUNTU,
            PRODUCT_NGINX,
            (
                "SYN-NGINX-2016-0001",
                ("SYN-NGINX-2016-0002", "SYN-UBUNTU-2016-0001"),
            ),
        ),
        "app_weblogic": ServerRole(
            "app_weblogic",
            roles["app"].operating_system,
            roles["app"].application,
            roles["app"].attack_tree_spec,
        ),
        "db_mysql": ServerRole(
            "db_mysql",
            roles["db"].operating_system,
            roles["db"].application,
            roles["db"].attack_tree_spec,
        ),
        "db_postgres": ServerRole(
            "db_postgres",
            PRODUCT_UBUNTU,
            PRODUCT_POSTGRES,
            ("SYN-PG-2016-0001", "SYN-PG-2016-0002"),
        ),
    }


def paper_variant_space() -> dict[str, tuple[ServerRole, ...]]:
    """The :func:`paper_variants` stacks grouped by the role they serve.

    This is the variant pool
    :func:`repro.evaluation.sweep.enumerate_heterogeneous_designs` (and
    ``repro sweep --variants``) explores: every role offers its primary
    paper stack, and the web/db tiers add the diverse alternatives from
    :mod:`repro.vulnerability.diversity`.
    """
    variants = paper_variants()
    return {
        "dns": (variants["dns_ms"],),
        "web": (variants["web_apache"], variants["web_nginx"]),
        "app": (variants["app_weblogic"],),
        "db": (variants["db_mysql"], variants["db_postgres"]),
    }


class HeterogeneousDesign:
    """Replica counts per (role, variant).

    Implements the :class:`~repro.enterprise.design.DesignSpec` protocol,
    so it flows through the same evaluators, sweep engine and Pareto
    ranking as :class:`~repro.enterprise.design.RedundancyDesign`.

    Parameters
    ----------
    assignment:
        Role name -> {variant ServerRole -> count}.  Variant names must
        be globally unique (they become host-name prefixes).

    Examples
    --------
    >>> apache = ServerRole("web_apache", "RHEL", "Apache HTTP")
    >>> nginx = ServerRole("web_nginx", "Ubuntu", "nginx")
    >>> design = HeterogeneousDesign({"web": {apache: 1, nginx: 1}})
    >>> design.total_servers
    2
    """

    def __init__(self, assignment: Mapping[str, Mapping[ServerRole, int]]) -> None:
        if not assignment:
            raise ValidationError("a design needs at least one role")
        self._assignment: dict[str, dict[ServerRole, int]] = {}
        seen: set[str] = set()
        for role, variants in assignment.items():
            if not variants:
                raise ValidationError(f"role {role!r} has no variants")
            for variant, count in variants.items():
                check_positive_int(count, f"count of {variant.name!r}")
                if variant.name in seen:
                    raise ValidationError(
                        f"variant name {variant.name!r} used twice"
                    )
                seen.add(variant.name)
            self._assignment[role] = dict(variants)

    @property
    def roles(self) -> list[str]:
        """Role names in insertion order."""
        return list(self._assignment)

    @property
    def counts(self) -> dict[str, int]:
        """Role -> total replica count, summed over the role's variants."""
        return {
            role: sum(variants.values())
            for role, variants in self._assignment.items()
        }

    def variants(self, role: str) -> dict[ServerRole, int]:
        """Variant -> count mapping of *role*."""
        try:
            return dict(self._assignment[role])
        except KeyError:
            raise ValidationError(f"role {role!r} not in design") from None

    def all_variants(self) -> dict[ServerRole, int]:
        """Variant -> count over every role (names are globally unique)."""
        return {
            variant: count
            for variants in self._assignment.values()
            for variant, count in variants.items()
        }

    def tiers(self) -> dict[str, dict[str, int]]:
        """Role -> {variant name -> count}, the availability-model shape."""
        return {
            role: {variant.name: count for variant, count in variants.items()}
            for role, variants in self._assignment.items()
        }

    @property
    def total_servers(self) -> int:
        """Total number of deployed servers."""
        return sum(
            count
            for variants in self._assignment.values()
            for count in variants.values()
        )

    def instances(self, role: str) -> dict[str, ServerRole]:
        """Host name -> variant for every replica of *role*."""
        hosts: dict[str, ServerRole] = {}
        for variant, count in self._assignment[role].items():
            for i in range(1, count + 1):
                hosts[f"{variant.name}{i}"] = variant
        return hosts

    @property
    def label(self) -> str:
        """Readable summary, e.g. ``web[1 web_apache + 1 web_nginx]``."""
        parts = []
        for role, variants in self._assignment.items():
            inner = " + ".join(
                f"{count} {variant.name}" for variant, count in variants.items()
            )
            parts.append(f"{role}[{inner}]")
        return " / ".join(parts)

    # -- identity ----------------------------------------------------------------

    def cache_key(self) -> tuple:
        """Order-insensitive identity (the :class:`DesignSpec` contract)."""
        return (
            "heterogeneous",
            tuple(
                sorted(
                    (role, tuple(sorted((v.name, count) for v, count in variants.items())))
                    for role, variants in self._assignment.items()
                )
            ),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeterogeneousDesign):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __repr__(self) -> str:
        return f"HeterogeneousDesign({self.label!r})"


def build_heterogeneous_harm(
    case_study: EnterpriseCaseStudy,
    design: HeterogeneousDesign,
    database: VulnerabilityDatabase,
    policy: PatchPolicy | None = None,
) -> Harm:
    """Host-level HARM for a heterogeneous design.

    The role-level topology comes from *case_study*; per-host
    vulnerabilities and tree specs come from each variant.
    """
    host_vulns: dict[str, list[Vulnerability]] = {}
    tree_specs: dict[str, tuple[BranchSpec, ...]] = {}
    role_hosts: dict[str, list[str]] = {}
    for role in design.roles:
        if role not in case_study.topology.roles:
            raise ValidationError(f"role {role!r} unknown to the topology")
        hosts = design.instances(role)
        role_hosts[role] = list(hosts)
        for host, variant in hosts.items():
            host_vulns[host] = variant_vulnerabilities(database, variant)
            if variant.attack_tree_spec is not None:
                tree_specs[host] = variant.attack_tree_spec

    reachability = [
        (src_host, dst_host)
        for src_role, dst_role in case_study.topology.role_edges()
        if src_role in role_hosts and dst_role in role_hosts
        for src_host in role_hosts[src_role]
        for dst_host in role_hosts[dst_role]
    ]
    entry_hosts = [
        host
        for role in case_study.topology.entry_roles
        if role in role_hosts
        for host in role_hosts[role]
    ]
    targets = [
        host
        for role in case_study.topology.target_roles
        if role in role_hosts
        for host in role_hosts[role]
    ]
    harm = build_harm(
        host_vulnerabilities=host_vulns,
        reachability=reachability,
        entry_hosts=entry_hosts,
        targets=targets,
        tree_specs=tree_specs,
    )
    if policy is None:
        return harm
    patched = {
        host: policy.patched_cve_ids(vulns) for host, vulns in host_vulns.items()
    }
    return harm.after_patching(patched)


def heterogeneous_availability_model(
    case_study: EnterpriseCaseStudy,
    design: HeterogeneousDesign,
    database: VulnerabilityDatabase,
    policy: PatchPolicy,
    component_rates: Mapping[str, ComponentRates] | None = None,
) -> HeterogeneousAvailabilityModel:
    """Build the variant-aware availability model for *design*.

    Each variant gets its own lower-layer SRN (its patch pipeline derives
    from the vulnerabilities *policy* selects on that variant's products)
    and becomes one group in the upper-layer model.
    """
    rates_overrides = dict(component_rates or {})
    aggregates: dict[str, ServiceAggregate] = {}
    for role in design.roles:
        for variant in design.variants(role):
            parameters = case_study.variant_parameters(
                variant, policy, database=database, role=role
            )
            if variant.name in rates_overrides:
                parameters = replace(
                    parameters, rates=rates_overrides[variant.name]
                )
            aggregates[variant.name] = aggregate_service(parameters)
    return HeterogeneousAvailabilityModel(design.tiers(), aggregates)

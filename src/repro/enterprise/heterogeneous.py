"""Heterogeneous redundancy: mixing software variants within a tier.

Implements the paper's §V future-work item: a
:class:`HeterogeneousDesign` assigns replica counts per *variant* (a
:class:`ServerRole` describing an alternative stack), and the builders
expand it into a host-level HARM and a variant-aware availability model.

Security intuition: with identical replicas, compromising one web server
strategy compromises both; with diverse stacks an attacker needs a
separate exploit per variant, and an exploit for one stack opens only
that stack's paths.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro._validation import check_positive_int
from repro.attacktree.tree import BranchSpec
from repro.availability.aggregation import ServiceAggregate, aggregate_service
from repro.availability.heterogeneous import HeterogeneousAvailabilityModel
from repro.availability.parameters import ComponentRates, ServerParameters
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.roles import ServerRole
from repro.errors import ValidationError
from repro.harm import Harm, build_harm
from repro.patching.policy import PatchPolicy
from repro.patching.workload import derive_pipeline
from repro.vulnerability.database import VulnerabilityDatabase
from repro.vulnerability.model import Vulnerability

__all__ = [
    "HeterogeneousDesign",
    "build_heterogeneous_harm",
    "heterogeneous_availability_model",
    "paper_variants",
]


def paper_variants() -> dict[str, ServerRole]:
    """Variant definitions for diversity studies on the paper's network.

    Primary variants mirror the paper's four roles (same products, same
    tree shapes, names suffixed with the stack); alternatives come from
    :mod:`repro.vulnerability.diversity`.  The nginx tree mirrors the
    paper's web-tree shape: a remote critical OR an (information leak AND
    local escalation) chain.
    """
    from repro.enterprise.casestudy import paper_case_study
    from repro.vulnerability.diversity import (
        PRODUCT_NGINX,
        PRODUCT_POSTGRES,
        PRODUCT_UBUNTU,
    )

    roles = paper_case_study().roles
    return {
        "dns_ms": ServerRole(
            "dns_ms",
            roles["dns"].operating_system,
            roles["dns"].application,
            roles["dns"].attack_tree_spec,
        ),
        "web_apache": ServerRole(
            "web_apache",
            roles["web"].operating_system,
            roles["web"].application,
            roles["web"].attack_tree_spec,
        ),
        "web_nginx": ServerRole(
            "web_nginx",
            PRODUCT_UBUNTU,
            PRODUCT_NGINX,
            (
                "SYN-NGINX-2016-0001",
                ("SYN-NGINX-2016-0002", "SYN-UBUNTU-2016-0001"),
            ),
        ),
        "app_weblogic": ServerRole(
            "app_weblogic",
            roles["app"].operating_system,
            roles["app"].application,
            roles["app"].attack_tree_spec,
        ),
        "db_mysql": ServerRole(
            "db_mysql",
            roles["db"].operating_system,
            roles["db"].application,
            roles["db"].attack_tree_spec,
        ),
        "db_postgres": ServerRole(
            "db_postgres",
            PRODUCT_UBUNTU,
            PRODUCT_POSTGRES,
            ("SYN-PG-2016-0001", "SYN-PG-2016-0002"),
        ),
    }


class HeterogeneousDesign:
    """Replica counts per (role, variant).

    Parameters
    ----------
    assignment:
        Role name -> {variant ServerRole -> count}.  Variant names must
        be globally unique (they become host-name prefixes).

    Examples
    --------
    >>> apache = ServerRole("web_apache", "RHEL", "Apache HTTP")
    >>> nginx = ServerRole("web_nginx", "Ubuntu", "nginx")
    >>> design = HeterogeneousDesign({"web": {apache: 1, nginx: 1}})
    >>> design.total_servers
    2
    """

    def __init__(self, assignment: Mapping[str, Mapping[ServerRole, int]]) -> None:
        if not assignment:
            raise ValidationError("a design needs at least one role")
        self._assignment: dict[str, dict[ServerRole, int]] = {}
        seen: set[str] = set()
        for role, variants in assignment.items():
            if not variants:
                raise ValidationError(f"role {role!r} has no variants")
            for variant, count in variants.items():
                check_positive_int(count, f"count of {variant.name!r}")
                if variant.name in seen:
                    raise ValidationError(
                        f"variant name {variant.name!r} used twice"
                    )
                seen.add(variant.name)
            self._assignment[role] = dict(variants)

    @property
    def roles(self) -> list[str]:
        """Role names in insertion order."""
        return list(self._assignment)

    def variants(self, role: str) -> dict[ServerRole, int]:
        """Variant -> count mapping of *role*."""
        try:
            return dict(self._assignment[role])
        except KeyError:
            raise ValidationError(f"role {role!r} not in design") from None

    @property
    def total_servers(self) -> int:
        """Total number of deployed servers."""
        return sum(
            count
            for variants in self._assignment.values()
            for count in variants.values()
        )

    def instances(self, role: str) -> dict[str, ServerRole]:
        """Host name -> variant for every replica of *role*."""
        hosts: dict[str, ServerRole] = {}
        for variant, count in self._assignment[role].items():
            for i in range(1, count + 1):
                hosts[f"{variant.name}{i}"] = variant
        return hosts

    @property
    def label(self) -> str:
        """Readable summary, e.g. ``web[1 web_apache + 1 web_nginx]``."""
        parts = []
        for role, variants in self._assignment.items():
            inner = " + ".join(
                f"{count} {variant.name}" for variant, count in variants.items()
            )
            parts.append(f"{role}[{inner}]")
        return " / ".join(parts)


def _variant_vulnerabilities(
    database: VulnerabilityDatabase, variant: ServerRole
) -> list[Vulnerability]:
    return database.for_products(variant.products)


def build_heterogeneous_harm(
    case_study: EnterpriseCaseStudy,
    design: HeterogeneousDesign,
    database: VulnerabilityDatabase,
    policy: PatchPolicy | None = None,
) -> Harm:
    """Host-level HARM for a heterogeneous design.

    The role-level topology comes from *case_study*; per-host
    vulnerabilities and tree specs come from each variant.
    """
    host_vulns: dict[str, list[Vulnerability]] = {}
    tree_specs: dict[str, tuple[BranchSpec, ...]] = {}
    role_hosts: dict[str, list[str]] = {}
    for role in design.roles:
        if role not in case_study.topology.roles:
            raise ValidationError(f"role {role!r} unknown to the topology")
        hosts = design.instances(role)
        role_hosts[role] = list(hosts)
        for host, variant in hosts.items():
            host_vulns[host] = _variant_vulnerabilities(database, variant)
            if variant.attack_tree_spec is not None:
                tree_specs[host] = variant.attack_tree_spec

    reachability = [
        (src_host, dst_host)
        for src_role, dst_role in case_study.topology.role_edges()
        if src_role in role_hosts and dst_role in role_hosts
        for src_host in role_hosts[src_role]
        for dst_host in role_hosts[dst_role]
    ]
    entry_hosts = [
        host
        for role in case_study.topology.entry_roles
        if role in role_hosts
        for host in role_hosts[role]
    ]
    targets = [
        host
        for role in case_study.topology.target_roles
        if role in role_hosts
        for host in role_hosts[role]
    ]
    harm = build_harm(
        host_vulnerabilities=host_vulns,
        reachability=reachability,
        entry_hosts=entry_hosts,
        targets=targets,
        tree_specs=tree_specs,
    )
    if policy is None:
        return harm
    patched = {
        host: policy.patched_cve_ids(vulns) for host, vulns in host_vulns.items()
    }
    return harm.after_patching(patched)


def heterogeneous_availability_model(
    case_study: EnterpriseCaseStudy,
    design: HeterogeneousDesign,
    database: VulnerabilityDatabase,
    policy: PatchPolicy,
    component_rates: Mapping[str, ComponentRates] | None = None,
) -> HeterogeneousAvailabilityModel:
    """Build the variant-aware availability model for *design*.

    Each variant gets its own lower-layer SRN (its patch pipeline derives
    from the vulnerabilities *policy* selects on that variant's products)
    and becomes one group in the upper-layer model.
    """
    rates_overrides = dict(component_rates or {})
    aggregates: dict[str, ServiceAggregate] = {}
    tiers: dict[str, dict[str, int]] = {}
    for role in design.roles:
        tiers[role] = {}
        for variant, count in design.variants(role).items():
            vulns = _variant_vulnerabilities(database, variant)
            parameters = ServerParameters(
                name=variant.name,
                rates=rates_overrides.get(variant.name, ComponentRates()),
                patch=derive_pipeline(vulns, policy),
                patch_interval_hours=case_study.schedule.interval_hours,
            )
            aggregates[variant.name] = aggregate_service(parameters)
            tiers[role][variant.name] = count
    return HeterogeneousAvailabilityModel(tiers, aggregates)

"""The attacker model (Section III-B of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AttackerModel"]


@dataclass(frozen=True)
class AttackerModel:
    """Assumptions about the adversary.

    The paper's attacker sits outside the network, aims to compromise the
    database tier through privilege-escalation chains, and spends
    uncorrelated effort per server (no single tool exploits two tiers at
    once) — which is why path probabilities multiply across hosts.

    Attributes
    ----------
    external:
        The attacker starts outside the network (entry points only).
    goal_roles:
        Role names the attacker ultimately wants to compromise.
    uncorrelated_effort:
        Whether per-host compromise efforts are independent.
    """

    external: bool = True
    goal_roles: tuple[str, ...] = ("db",)
    uncorrelated_effort: bool = True

    def describe(self) -> str:
        """One-line summary for reports."""
        origin = "external" if self.external else "internal"
        goals = ", ".join(self.goal_roles)
        return (
            f"{origin} attacker targeting [{goals}] with "
            f"{'independent' if self.uncorrelated_effort else 'correlated'} "
            "per-host effort"
        )

"""Server roles: the building blocks of an enterprise design."""

from __future__ import annotations

from dataclasses import dataclass

from repro._validation import check_name
from repro.attacktree.tree import BranchSpec
from repro.errors import ValidationError

__all__ = ["ServerRole"]


@dataclass(frozen=True)
class ServerRole:
    """One server tier (DNS / web / application / database in the paper).

    Parameters
    ----------
    name:
        Short role identifier, e.g. ``"web"``; instances are named
        ``web1``, ``web2``, ...
    operating_system, application:
        Product names used to query the vulnerability database.
    attack_tree_spec:
        Optional branch specification for the role's attack tree (see
        :meth:`repro.attacktree.AttackTree.from_branches`); names are CVE
        identifiers.  ``None`` means a flat OR over the exploitable
        vulnerabilities.
    """

    name: str
    operating_system: str
    application: str
    attack_tree_spec: tuple[BranchSpec, ...] | None = None

    def __post_init__(self) -> None:
        check_name(self.name, "role name")
        check_name(self.operating_system, "operating_system")
        check_name(self.application, "application")
        if not self.name.isidentifier():
            raise ValidationError(
                f"role name must be identifier-like, got {self.name!r}"
            )

    @property
    def products(self) -> tuple[str, str]:
        """The (operating system, application) product pair."""
        return (self.operating_system, self.application)

    def instance_name(self, index: int) -> str:
        """Host name of replica *index* (1-based), e.g. ``web2``."""
        if index < 1:
            raise ValidationError(f"replica index must be >= 1, got {index}")
        return f"{self.name}{index}"

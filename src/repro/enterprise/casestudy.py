"""The paper's example enterprise network, fully assembled.

:class:`EnterpriseCaseStudy` bundles the roles, the role-level topology,
the vulnerability catalog, the attacker model and the patch schedule,
and expands any :class:`RedundancyDesign` into

- a host-level two-layered HARM (before or after a patch policy), and
- per-role availability parameters (patch pipelines derived from the
  policy-selected vulnerabilities).

:func:`paper_case_study` instantiates the exact Section III case study:
three-tier web service, DNS and web tiers exposed to the attacker,
database tier as the goal, attack trees shaped as in Fig. 3.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.attacktree.tree import BranchSpec
from repro.availability.parameters import ComponentRates, ServerParameters
from repro.enterprise.attacker import AttackerModel
from repro.enterprise.design import RedundancyDesign
from repro.enterprise.roles import ServerRole
from repro.enterprise.topology import NetworkTopology
from repro.errors import ValidationError
from repro.harm import Harm, build_harm
from repro.patching.policy import PatchPolicy
from repro.patching.schedule import MONTHLY, PatchSchedule
from repro.patching.workload import derive_pipeline
from repro.vulnerability.catalog import (
    PRODUCT_APACHE,
    PRODUCT_MS_DNS,
    PRODUCT_MYSQL,
    PRODUCT_ORACLE_LINUX,
    PRODUCT_RHEL,
    PRODUCT_WEBLOGIC,
    PRODUCT_WINDOWS,
    paper_database,
)
from repro.vulnerability.database import VulnerabilityDatabase
from repro.vulnerability.model import Vulnerability

__all__ = ["EnterpriseCaseStudy", "paper_case_study", "variant_vulnerabilities"]


def variant_vulnerabilities(
    database: VulnerabilityDatabase, variant: ServerRole
) -> list[Vulnerability]:
    """All records for a variant stack's products, refusing empty sets.

    A variant without any record would silently understate the attack
    surface (and break pipeline derivation), so the lookup fails loudly
    instead — typically the caller forgot to pass a database covering
    the diversity stacks.
    """
    vulns = database.for_products(variant.products)
    if not vulns:
        raise ValidationError(
            f"variant {variant.name!r} has no vulnerability records for "
            f"products {variant.products!r}; evaluating it would silently "
            "understate the attack surface — pass a database covering the "
            "variant stacks (e.g. repro.vulnerability.diversity"
            ".diversity_database())"
        )
    return vulns


class EnterpriseCaseStudy:
    """A reusable enterprise-network description.

    Parameters
    ----------
    roles:
        Role name -> :class:`ServerRole`.
    topology:
        Role-level reachability with entry and target roles.
    database:
        The vulnerability database covering every role's products.
    attacker:
        The adversary assumptions.
    schedule:
        The patch cadence (monthly in the paper).
    component_rates:
        Optional role name -> :class:`ComponentRates` overrides; roles
        without an entry use the Table IV defaults.
    """

    def __init__(
        self,
        roles: Mapping[str, ServerRole],
        topology: NetworkTopology,
        database: VulnerabilityDatabase,
        attacker: AttackerModel | None = None,
        schedule: PatchSchedule = MONTHLY,
        component_rates: Mapping[str, ComponentRates] | None = None,
    ) -> None:
        if not roles:
            raise ValidationError("a case study needs at least one role")
        for role_name in topology.roles:
            if role_name not in roles:
                raise ValidationError(
                    f"topology role {role_name!r} has no ServerRole definition"
                )
        topology.validate()
        self.roles = dict(roles)
        self.topology = topology
        self.database = database
        self.attacker = attacker if attacker is not None else AttackerModel()
        self.schedule = schedule
        self._component_rates = dict(component_rates or {})

    # -- vulnerability views ------------------------------------------------

    def role_vulnerabilities(self, role: str) -> list[Vulnerability]:
        """All records (OS + application products) for *role*."""
        definition = self._role(role)
        return self.database.for_products(definition.products)

    def role_exploitable(self, role: str) -> list[Vulnerability]:
        """The remotely exploitable subset for *role*."""
        return [vuln for vuln in self.role_vulnerabilities(role) if vuln.exploitable]

    # -- security side ---------------------------------------------------------

    def build_harm(
        self,
        design: RedundancyDesign,
        policy: PatchPolicy | None = None,
    ) -> Harm:
        """Host-level HARM for *design*.

        Without *policy* the HARM reflects the network before patch; with
        a policy, the selected vulnerabilities are pruned from every
        host's tree (hosts losing every leaf drop off the attack
        surface, like the paper's DNS tier).
        """
        self._check_design(design)
        host_vulns: dict[str, list[Vulnerability]] = {}
        tree_specs: dict[str, tuple[BranchSpec, ...]] = {}
        for role_name in design.roles:
            definition = self._role(role_name)
            vulns = self.role_vulnerabilities(role_name)
            for instance in design.instances(role_name):
                host_vulns[instance] = vulns
                if definition.attack_tree_spec is not None:
                    tree_specs[instance] = definition.attack_tree_spec

        reachability = [
            (src_instance, dst_instance)
            for src_role, dst_role in self.topology.role_edges()
            if src_role in design.counts and dst_role in design.counts
            for src_instance in design.instances(src_role)
            for dst_instance in design.instances(dst_role)
        ]
        entry_hosts = [
            instance
            for role_name in self.topology.entry_roles
            if role_name in design.counts
            for instance in design.instances(role_name)
        ]
        targets = [
            instance
            for role_name in self.topology.target_roles
            if role_name in design.counts
            for instance in design.instances(role_name)
        ]

        harm = build_harm(
            host_vulnerabilities=host_vulns,
            reachability=reachability,
            entry_hosts=entry_hosts,
            targets=targets,
            tree_specs=tree_specs,
        )
        if policy is None:
            return harm
        patched = {
            instance: policy.patched_cve_ids(host_vulns[instance])
            for instance in host_vulns
        }
        return harm.after_patching(patched)

    # -- availability side ---------------------------------------------------------

    def server_parameters(
        self, role: str, policy: PatchPolicy
    ) -> ServerParameters:
        """Lower-layer SRN parameters for *role* under *policy*."""
        definition = self._role(role)
        pipeline = derive_pipeline(self.role_vulnerabilities(role), policy)
        rates = self._component_rates.get(definition.name, ComponentRates())
        return ServerParameters(
            name=definition.name,
            rates=rates,
            patch=pipeline,
            patch_interval_hours=self.schedule.interval_hours,
        )

    def variant_parameters(
        self,
        variant: ServerRole,
        policy: PatchPolicy,
        database: VulnerabilityDatabase | None = None,
        role: str | None = None,
    ) -> ServerParameters:
        """Lower-layer SRN parameters for a variant stack under *policy*.

        The variant-aware analog of :meth:`server_parameters`: the patch
        pipeline derives from the vulnerabilities *policy* selects on the
        variant's products.  *database* defaults to the case study's own
        database; pass a diversity database when the variant's products
        are not part of the paper catalog.  Component-rate overrides are
        looked up by variant name first, then by *role* (the tier the
        variant serves), so variants inherit their role's rates unless
        they override them — keeping single-variant designs bit-identical
        to their homogeneous twins even under per-role rate overrides.
        """
        db = database if database is not None else self.database
        pipeline = derive_pipeline(variant_vulnerabilities(db, variant), policy)
        if variant.name in self._component_rates:
            rates = self._component_rates[variant.name]
        elif role is not None and role in self._component_rates:
            rates = self._component_rates[role]
        else:
            rates = ComponentRates()
        return ServerParameters(
            name=variant.name,
            rates=rates,
            patch=pipeline,
            patch_interval_hours=self.schedule.interval_hours,
        )

    def with_schedule(self, schedule: PatchSchedule) -> "EnterpriseCaseStudy":
        """A copy of the case study under a different patch cadence."""
        return EnterpriseCaseStudy(
            roles=self.roles,
            topology=self.topology,
            database=self.database,
            attacker=self.attacker,
            schedule=schedule,
            component_rates=self._component_rates,
        )

    # -- internal ----------------------------------------------------------------

    def _role(self, role: str) -> ServerRole:
        try:
            return self.roles[role]
        except KeyError:
            raise ValidationError(f"unknown role {role!r}") from None

    def _check_design(self, design: RedundancyDesign) -> None:
        for role_name in design.roles:
            self._role(role_name)


def paper_case_study(schedule: PatchSchedule = MONTHLY) -> EnterpriseCaseStudy:
    """The Section III example network with the Fig. 3 attack trees.

    Tree shapes (v-labels as in Table I):

    - dns: ``v1dns``
    - web: ``v1 | v2 | v3 | (v4 & v5)``
    - app: ``v1 | v2 | v3 | (v4 & v5)``
    - db:  ``v1 | v2 | (v3 & v4) | v5`` — the unique shape (up to the
      symmetric v4/v5 swap) consistent with the paper's path impact of
      12.9 both before and after patch.
    """
    roles = {
        "dns": ServerRole(
            name="dns",
            operating_system=PRODUCT_WINDOWS,
            application=PRODUCT_MS_DNS,
            attack_tree_spec=("CVE-2016-3227",),
        ),
        "web": ServerRole(
            name="web",
            operating_system=PRODUCT_RHEL,
            application=PRODUCT_APACHE,
            attack_tree_spec=(
                "CVE-2016-4448",
                "CVE-2015-4602",
                "CVE-2015-4603",
                ("CVE-2016-4979", "CVE-2016-4805"),
            ),
        ),
        "app": ServerRole(
            name="app",
            operating_system=PRODUCT_ORACLE_LINUX,
            application=PRODUCT_WEBLOGIC,
            attack_tree_spec=(
                "CVE-2016-3586",
                "CVE-2016-3510",
                "CVE-2016-3499",
                ("CVE-2016-0638", "CVE-2016-4997"),
            ),
        ),
        "db": ServerRole(
            name="db",
            operating_system=PRODUCT_ORACLE_LINUX,
            application=PRODUCT_MYSQL,
            attack_tree_spec=(
                "CVE-2016-6662",
                "CVE-2016-0639",
                ("CVE-2015-3152", "CVE-2016-3471"),
                "CVE-2016-4997",
            ),
        ),
    }
    topology = NetworkTopology(["dns", "web", "app", "db"])
    topology.add_entry_role("dns")
    topology.add_entry_role("web")
    topology.add_role_reachability("dns", "web")
    topology.add_role_reachability("web", "app")
    topology.add_role_reachability("app", "db")
    topology.add_target_role("db")

    return EnterpriseCaseStudy(
        roles=roles,
        topology=topology,
        database=paper_database(),
        attacker=AttackerModel(goal_roles=("db",)),
        schedule=schedule,
    )

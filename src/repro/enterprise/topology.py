"""Role-level network topology (subnets, firewalls, reachability)."""

from __future__ import annotations

from collections.abc import Iterable

from repro._validation import check_name
from repro.errors import ValidationError
from repro.graphs import DiGraph, has_cycle

__all__ = ["NetworkTopology"]


class NetworkTopology:
    """Reachability between server roles, plus entry and target roles.

    The paper's example network (Fig. 2): the attacker reaches the DNS
    and web tiers through the external firewall; DNS can reach web; web
    reaches the application tier through the internal firewall; the
    application tier reaches the database (the attack goal).

    Examples
    --------
    >>> topology = NetworkTopology(["web", "db"])
    >>> topology.add_entry_role("web")
    >>> topology.add_role_reachability("web", "db")
    >>> topology.add_target_role("db")
    >>> topology.validate()
    """

    def __init__(self, roles: Iterable[str] = ()) -> None:
        self._roles: list[str] = []
        self._graph = DiGraph()
        self._entry_roles: list[str] = []
        self._target_roles: list[str] = []
        for role in roles:
            self.add_role(role)

    # -- construction ------------------------------------------------------

    def add_role(self, role: str) -> None:
        """Register a role (idempotent)."""
        check_name(role, "role")
        if role not in self._roles:
            self._roles.append(role)
            self._graph.add_node(role)

    def add_role_reachability(self, src: str, dst: str) -> None:
        """Allow connections from tier *src* to tier *dst*."""
        self._require_role(src)
        self._require_role(dst)
        self._graph.add_edge(src, dst)

    def add_entry_role(self, role: str) -> None:
        """Mark *role* as attacker-reachable (through the outer firewall)."""
        self._require_role(role)
        if role not in self._entry_roles:
            self._entry_roles.append(role)

    def add_target_role(self, role: str) -> None:
        """Mark *role* as an attack goal."""
        self._require_role(role)
        if role not in self._target_roles:
            self._target_roles.append(role)

    # -- accessors -----------------------------------------------------------

    @property
    def roles(self) -> list[str]:
        """Roles in insertion order."""
        return list(self._roles)

    @property
    def entry_roles(self) -> list[str]:
        """Attacker-reachable roles."""
        return list(self._entry_roles)

    @property
    def target_roles(self) -> list[str]:
        """Attack-goal roles."""
        return list(self._target_roles)

    def role_edges(self) -> list[tuple[str, str]]:
        """All (src, dst) role reachability pairs."""
        return self._graph.edges()

    def reachable_roles(self, role: str) -> list[str]:
        """Roles directly reachable from *role*."""
        self._require_role(role)
        return self._graph.successors(role)

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check the topology is usable for HARM construction."""
        if not self._roles:
            raise ValidationError("topology has no roles")
        if not self._entry_roles:
            raise ValidationError("topology has no entry roles")
        if not self._target_roles:
            raise ValidationError("topology has no target roles")
        if has_cycle(self._graph):
            # Cycles are legal in general networks, but the paper's
            # tiered architectures are acyclic; warn loudly via error to
            # catch accidental double edges in case-study definitions.
            raise ValidationError("role-level topology contains a cycle")

    def _require_role(self, role: str) -> None:
        if role not in self._roles:
            raise ValidationError(f"unknown role {role!r}")

"""Redundancy designs: how many replicas each role gets.

:class:`DesignSpec` is the protocol every design kind implements —
homogeneous :class:`RedundancyDesign` here and the diverse-stack
:class:`~repro.enterprise.heterogeneous.HeterogeneousDesign` — so the
evaluation layers (:mod:`repro.evaluation.combined`,
:mod:`repro.evaluation.engine`, :mod:`repro.evaluation.sweep`) score,
cache and rank any mix of design kinds through one pipeline.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from typing import Protocol, runtime_checkable

from repro._validation import check_positive_int
from repro.errors import ValidationError

__all__ = [
    "DesignSpec",
    "RedundancyDesign",
    "paper_designs",
    "example_network_design",
]


@runtime_checkable
class DesignSpec(Protocol):
    """What every design kind exposes to the evaluation pipeline.

    Implementations are immutable value objects: hashable (so sweep
    engines can memoise one evaluation per design), picklable (so they
    can cross a process-pool boundary) and equality-comparable through
    :meth:`cache_key`.
    """

    @property
    def label(self) -> str:
        """Human-readable summary used in tables and JSON output."""
        ...

    @property
    def roles(self) -> list[str]:
        """Role names in insertion order."""
        ...

    @property
    def counts(self) -> dict[str, int]:
        """Role -> total replica count (all variants of the role)."""
        ...

    @property
    def total_servers(self) -> int:
        """Total number of deployed servers."""
        ...

    def cache_key(self) -> Hashable:
        """Order-insensitive identity used for hashing and memoisation."""
        ...


class RedundancyDesign:
    """A replica-count assignment for the server roles.

    Examples
    --------
    >>> design = RedundancyDesign({"dns": 1, "web": 2, "app": 2, "db": 1})
    >>> design.total_servers
    6
    >>> design.label
    '1 DNS + 2 WEB + 2 APP + 1 DB'
    """

    def __init__(self, counts: Mapping[str, int]) -> None:
        if not counts:
            raise ValidationError("a design needs at least one role")
        self._counts = {
            role: check_positive_int(count, f"count of {role!r}")
            for role, count in counts.items()
        }

    @property
    def counts(self) -> dict[str, int]:
        """Role -> replica count."""
        return dict(self._counts)

    def count_of(self, role: str) -> int:
        """Replica count of *role*.

        Raises
        ------
        ValidationError
            If the role is not part of the design.
        """
        try:
            return self._counts[role]
        except KeyError:
            raise ValidationError(f"role {role!r} not in design") from None

    @property
    def roles(self) -> list[str]:
        """Roles in insertion order."""
        return list(self._counts)

    @property
    def total_servers(self) -> int:
        """Total number of deployed servers."""
        return sum(self._counts.values())

    @property
    def label(self) -> str:
        """The paper's naming style, e.g. ``"1 DNS + 2 WEB + 2 APP + 1 DB"``."""
        return " + ".join(
            f"{count} {role.upper()}" for role, count in self._counts.items()
        )

    def instances(self, role: str) -> list[str]:
        """Host names of the replicas of *role* (``web1``, ``web2``, ...)."""
        return [f"{role}{i}" for i in range(1, self.count_of(role) + 1)]

    def all_instances(self) -> dict[str, str]:
        """Host name -> role for every deployed server."""
        return {
            instance: role
            for role in self._counts
            for instance in self.instances(role)
        }

    def with_extra_replica(self, role: str) -> "RedundancyDesign":
        """A new design with one more replica of *role*."""
        counts = self.counts
        counts[role] = self.count_of(role) + 1
        return RedundancyDesign(counts)

    # -- identity ----------------------------------------------------------------

    def cache_key(self) -> tuple:
        """Order-insensitive identity (the :class:`DesignSpec` contract)."""
        return ("homogeneous", tuple(sorted(self._counts.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RedundancyDesign):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __repr__(self) -> str:
        return f"RedundancyDesign({self._counts!r})"


def paper_designs() -> list[RedundancyDesign]:
    """The five design choices of Section IV, in the paper's order.

    1. 1 DNS + 1 WEB + 1 APP + 1 DB  (no redundancy)
    2. 2 DNS + 1 WEB + 1 APP + 1 DB
    3. 1 DNS + 2 WEB + 1 APP + 1 DB
    4. 1 DNS + 1 WEB + 2 APP + 1 DB
    5. 1 DNS + 1 WEB + 1 APP + 2 DB
    """
    base = {"dns": 1, "web": 1, "app": 1, "db": 1}
    designs = [RedundancyDesign(base)]
    for role in ("dns", "web", "app", "db"):
        counts = dict(base)
        counts[role] = 2
        designs.append(RedundancyDesign(counts))
    return designs


def example_network_design() -> RedundancyDesign:
    """The Section III example network: 1 DNS + 2 WEB + 2 APP + 1 DB."""
    return RedundancyDesign({"dns": 1, "web": 2, "app": 2, "db": 1})

"""Process-wide metrics registry: counters, gauges, histograms.

Zero-dependency (stdlib only) Prometheus-style instrumentation for the
whole pipeline.  One global :data:`REGISTRY` collects every series the
solvers, caches, executors, shared-memory plumbing and the evaluation
service report; the registry knows how to

* snapshot itself (:meth:`MetricsRegistry.state`) and compute the
  **delta** since a snapshot (:meth:`MetricsRegistry.delta_since`) —
  this is how worker processes ship their increments back piggybacked
  on chunk results;
* **merge** a worker delta into the parent
  (:meth:`MetricsRegistry.merge`), creating any families the parent
  has not seen yet, so a process-pool sweep yields one coherent set of
  counts;
* render a JSON snapshot (:meth:`MetricsRegistry.to_dict`) and the
  Prometheus text exposition format
  (:meth:`MetricsRegistry.to_prometheus`) for ``GET /metrics``.

Every mutation is lock-guarded and cheap (one dict lookup plus a float
add under an ``RLock``), so instrumentation can stay on permanently —
the hot solver loops record one observation per *solve*, never per
matrix element.

Families are get-or-create: calling :func:`counter` twice with the same
name returns the same family, so modules can resolve their series at
import time without coordinating.  :meth:`MetricsRegistry.reset` zeroes
values **in place** (families and children survive), so cached child
handles held by instrumented modules stay live across test resets.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): spans sub-millisecond solver
#: steps through minute-long scaled sweeps.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_INF = float("inf")

LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, str]) -> LabelItems:
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


class Counter:
    """A monotonically increasing value (one labelled series)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (one labelled series)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max (one series)."""

    __slots__ = ("_lock", "buckets", "counts", "sum", "count", "min", "max")

    def __init__(
        self, lock: threading.RLock, buckets: tuple[float, ...]
    ) -> None:
        self._lock = lock
        self.buckets = buckets  # upper bounds, ascending, no +inf
        self.counts = [0] * (len(buckets) + 1)  # last slot = +inf
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value


class _Family:
    """Base for a named metric family holding labelled children."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str):
        self.name = name
        self.help = help
        self._lock = registry._lock
        self._series: dict[LabelItems, Any] = {}

    def _new_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: str) -> Any:
        """Get or create the child series for *labels*."""
        items = _label_items(labels)
        with self._lock:
            child = self._series.get(items)
            if child is None:
                child = self._new_child()
                self._series[items] = child
            return child

    def series(self) -> dict[LabelItems, Any]:
        with self._lock:
            return dict(self._series)


class CounterFamily(_Family):
    kind = "counter"

    def _new_child(self) -> Counter:
        return Counter(self._lock)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)


class GaugeFamily(_Family):
    kind = "gauge"

    def _new_child(self) -> Gauge:
        return Gauge(self._lock)

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).dec(amount)


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(registry, name, help)
        self.buckets = buckets

    def _new_child(self) -> Histogram:
        return Histogram(self._lock, self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)


def _normalise_buckets(
    buckets: tuple[float, ...] | list[float] | None,
) -> tuple[float, ...]:
    if buckets is None:
        return DEFAULT_BUCKETS
    bounds = tuple(float(b) for b in buckets if not math.isinf(float(b)))
    if not bounds or list(bounds) != sorted(bounds):
        raise ValueError("histogram buckets must be ascending and finite")
    return bounds


class MetricsRegistry:
    """A set of named metric families with snapshot/delta/merge support."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- family accessors -------------------------------------------------

    def _family(self, name: str, help: str, factory) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = factory()
                self._families[name] = family
            return family

    def counter(self, name: str, help: str = "") -> CounterFamily:
        family = self._family(
            name, help, lambda: CounterFamily(self, name, help)
        )
        if not isinstance(family, CounterFamily):
            raise TypeError(f"{name} is registered as a {family.kind}")
        return family

    def gauge(self, name: str, help: str = "") -> GaugeFamily:
        family = self._family(name, help, lambda: GaugeFamily(self, name, help))
        if not isinstance(family, GaugeFamily):
            raise TypeError(f"{name} is registered as a {family.kind}")
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | list[float] | None = None,
    ) -> HistogramFamily:
        bounds = _normalise_buckets(buckets)
        family = self._family(
            name, help, lambda: HistogramFamily(self, name, help, bounds)
        )
        if not isinstance(family, HistogramFamily):
            raise TypeError(f"{name} is registered as a {family.kind}")
        return family

    def families(self) -> dict[str, _Family]:
        with self._lock:
            return dict(self._families)

    # -- snapshot / delta / merge ----------------------------------------

    def state(self) -> dict[tuple[str, LabelItems], dict[str, Any]]:
        """Flat picklable snapshot of every series' current value."""
        snapshot: dict[tuple[str, LabelItems], dict[str, Any]] = {}
        with self._lock:
            for name, family in self._families.items():
                for items, child in family.series().items():
                    entry: dict[str, Any] = {
                        "kind": family.kind,
                        "help": family.help,
                    }
                    if family.kind == "histogram":
                        entry["buckets"] = child.buckets
                        entry["counts"] = list(child.counts)
                        entry["sum"] = child.sum
                        entry["count"] = child.count
                        entry["min"] = child.min
                        entry["max"] = child.max
                    else:
                        entry["value"] = child.value
                    snapshot[(name, items)] = entry
        return snapshot

    def delta_since(
        self, before: Mapping[tuple[str, LabelItems], Mapping[str, Any]]
    ) -> dict[tuple[str, LabelItems], dict[str, Any]]:
        """Increments accrued since *before* (a :meth:`state` snapshot).

        Counters and histograms subtract; gauges report their current
        value (merging a gauge delta *sets* the parent's series).
        Histogram min/max carry the post-window extrema — slightly
        wider than the window for long-lived workers, which is fine for
        observability.  Series unchanged since *before* are omitted.
        """
        delta: dict[tuple[str, LabelItems], dict[str, Any]] = {}
        for key, entry in self.state().items():
            prior = before.get(key)
            kind = entry["kind"]
            if kind == "histogram":
                if prior is not None:
                    counts = [
                        c - p for c, p in zip(entry["counts"], prior["counts"])
                    ]
                    count = entry["count"] - prior["count"]
                    total = entry["sum"] - prior["sum"]
                else:
                    counts = list(entry["counts"])
                    count = entry["count"]
                    total = entry["sum"]
                if count == 0:
                    continue
                delta[key] = {
                    "kind": kind,
                    "help": entry["help"],
                    "buckets": entry["buckets"],
                    "counts": counts,
                    "sum": total,
                    "count": count,
                    "min": entry["min"],
                    "max": entry["max"],
                }
            elif kind == "counter":
                value = entry["value"] - (prior["value"] if prior else 0.0)
                if value != 0.0:
                    delta[key] = {
                        "kind": kind,
                        "help": entry["help"],
                        "value": value,
                    }
            else:  # gauge: ship the current value
                if prior is None or entry["value"] != prior["value"]:
                    delta[key] = {
                        "kind": kind,
                        "help": entry["help"],
                        "value": entry["value"],
                    }
        return delta

    def merge(
        self, delta: Mapping[tuple[str, LabelItems], Mapping[str, Any]]
    ) -> None:
        """Fold a worker :meth:`delta_since` into this registry.

        Counter and histogram increments add; gauge values set.
        Families absent from this registry are created on the fly.
        """
        for (name, items), entry in delta.items():
            labels = dict(items)
            kind = entry["kind"]
            if kind == "counter":
                self.counter(name, entry.get("help", "")).labels(**labels).inc(
                    entry["value"]
                )
            elif kind == "gauge":
                self.gauge(name, entry.get("help", "")).labels(**labels).set(
                    entry["value"]
                )
            elif kind == "histogram":
                child = self.histogram(
                    name, entry.get("help", ""), buckets=entry["buckets"]
                ).labels(**labels)
                with self._lock:
                    for i, c in enumerate(entry["counts"]):
                        if i < len(child.counts):
                            child.counts[i] += c
                    child.sum += entry["sum"]
                    child.count += entry["count"]
                    for bound_name, better in (("min", min), ("max", max)):
                        theirs = entry.get(bound_name)
                        if theirs is None:
                            continue
                        ours = getattr(child, bound_name)
                        setattr(
                            child,
                            bound_name,
                            theirs if ours is None else better(ours, theirs),
                        )
            else:  # pragma: no cover - future kinds
                raise ValueError(f"unknown metric kind: {kind!r}")

    def reset(self) -> None:
        """Zero every series in place (families and children survive)."""
        with self._lock:
            for family in self._families.values():
                for child in family.series().values():
                    if isinstance(child, Histogram):
                        child.counts = [0] * (len(child.buckets) + 1)
                        child.sum = 0.0
                        child.count = 0
                        child.min = None
                        child.max = None
                    else:
                        child._value = 0.0

    # -- exposition -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot keyed by family name."""
        out: dict[str, Any] = {}
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                series = []
                for items, child in sorted(family.series().items()):
                    entry: dict[str, Any] = {"labels": dict(items)}
                    if family.kind == "histogram":
                        entry.update(
                            count=child.count,
                            sum=child.sum,
                            min=child.min,
                            max=child.max,
                            mean=(
                                child.sum / child.count if child.count else None
                            ),
                            buckets={
                                _format_bound(b): c
                                for b, c in zip(
                                    list(child.buckets) + [_INF],
                                    _cumulative(child.counts),
                                )
                            },
                        )
                    else:
                        entry["value"] = child.value
                    series.append(entry)
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "series": series,
                }
        return out

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (v0.0.4)."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    lines.append(f"# HELP {name} {_escape_help(family.help)}")
                lines.append(f"# TYPE {name} {family.kind}")
                for items, child in sorted(family.series().items()):
                    if family.kind == "histogram":
                        bounds = list(child.buckets) + [_INF]
                        for bound, cum in zip(
                            bounds, _cumulative(child.counts)
                        ):
                            bucket_items = items + (
                                ("le", _format_bound(bound)),
                            )
                            lines.append(
                                f"{name}_bucket{_render_labels(bucket_items)}"
                                f" {cum}"
                            )
                        lines.append(
                            f"{name}_sum{_render_labels(items)}"
                            f" {_format_value(child.sum)}"
                        )
                        lines.append(
                            f"{name}_count{_render_labels(items)} {child.count}"
                        )
                    else:
                        lines.append(
                            f"{name}{_render_labels(items)}"
                            f" {_format_value(child.value)}"
                        )
        return "\n".join(lines) + "\n"


def _cumulative(counts: list[int]) -> list[int]:
    total = 0
    out = []
    for c in counts:
        total += c
        out.append(total)
    return out


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return _format_value(bound)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


#: The process-wide registry every repro layer reports into.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "") -> CounterFamily:
    """Get or create a counter family on the global :data:`REGISTRY`."""
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> GaugeFamily:
    """Get or create a gauge family on the global :data:`REGISTRY`."""
    return REGISTRY.gauge(name, help)


def histogram(
    name: str,
    help: str = "",
    buckets: tuple[float, ...] | list[float] | None = None,
) -> HistogramFamily:
    """Get or create a histogram family on the global :data:`REGISTRY`."""
    return REGISTRY.histogram(name, help, buckets=buckets)

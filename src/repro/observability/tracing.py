"""Span tracing with Chrome trace-event export.

A :class:`span` is a context manager recording one Chrome *complete*
event (``"ph": "X"``) — wall-clock start (microseconds), duration, pid
and tid.  Nesting falls out of timestamps on the same pid/tid, so spans
need no parent pointers and worker-process spans merge into the parent
trace by plain list concatenation (:func:`extend`).

Tracing is **off by default** and the disabled path is near-free: one
attribute read in ``__enter__``/``__exit__``, no clock reads, no
allocation beyond the span object itself.  Instrumented code therefore
wraps hot sections unconditionally::

    with span("ctmc:transient", states=n, method=method) as sp:
        result = solve(...)
        sp.add(iterations=k)

Workers drain their spans (:func:`drain`) into the chunk telemetry the
engine merges; :func:`write_chrome_trace` writes the merged buffer as
Chrome trace-event JSON, viewable in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.

Nesting context is tracked per-task via :mod:`contextvars` depth so the
exporter can label top-level spans, and enabling/disabling mid-flight
is safe: a span only records if tracing was enabled when it *entered*.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from typing import Any, Iterable

__all__ = [
    "span",
    "enable",
    "disable",
    "is_enabled",
    "set_enabled",
    "events",
    "drain",
    "extend",
    "write_chrome_trace",
]


class _State:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_STATE = _State()
_LOCK = threading.Lock()
_EVENTS: list[dict[str, Any]] = []

#: Current span nesting depth (per thread/task).
_DEPTH: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_span_depth", default=0
)


def set_enabled(flag: bool) -> bool:
    """Turn tracing on/off; returns the previous state."""
    previous = _STATE.enabled
    _STATE.enabled = bool(flag)
    return previous


def enable() -> None:
    """Start recording spans."""
    set_enabled(True)


def disable() -> None:
    """Stop recording spans (already-recorded events are kept)."""
    set_enabled(False)


def is_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _STATE.enabled


class span:
    """Record one trace event around a ``with`` block.

    Keyword arguments become the event's ``args``; :meth:`add` attaches
    more after the fact (e.g. counts known only once work completes).
    When tracing is disabled both are no-ops and no clock is read.
    """

    __slots__ = ("name", "args", "_start", "_wall", "_token")

    def __init__(self, name: str, **args: Any) -> None:
        self.name = name
        self.args = args
        self._start: float | None = None

    def __enter__(self) -> "span":
        if _STATE.enabled:
            self._token = _DEPTH.set(_DEPTH.get() + 1)
            self._wall = time.time()
            self._start = time.perf_counter()
        return self

    def add(self, **args: Any) -> "span":
        """Attach extra args (no-op when the span is not recording)."""
        if self._start is not None:
            self.args.update(args)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        start = self._start
        if start is None:
            return False
        duration = time.perf_counter() - start
        depth = _DEPTH.get()
        _DEPTH.reset(self._token)
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        event: dict[str, Any] = {
            "name": self.name,
            "cat": "repro",
            "ph": "X",
            "ts": round(self._wall * 1e6, 3),
            "dur": round(duration * 1e6, 3),
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
        }
        args = {k: _jsonable(v) for k, v in self.args.items()}
        args["depth"] = depth
        event["args"] = args
        with _LOCK:
            _EVENTS.append(event)
        return False


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def events() -> list[dict[str, Any]]:
    """A copy of the recorded event buffer."""
    with _LOCK:
        return list(_EVENTS)


def drain() -> list[dict[str, Any]]:
    """Return the recorded events and clear the buffer."""
    global _EVENTS
    with _LOCK:
        drained = _EVENTS
        _EVENTS = []
    return drained


def extend(batch: Iterable[dict[str, Any]]) -> None:
    """Merge events recorded elsewhere (e.g. a worker process)."""
    batch = list(batch)
    if not batch:
        return
    with _LOCK:
        _EVENTS.extend(batch)


def write_chrome_trace(
    path: str, batch: Iterable[dict[str, Any]] | None = None
) -> int:
    """Write events as Chrome trace-event JSON; returns the span count.

    With no *batch*, drains (and clears) the global buffer.  The file
    wraps events in ``{"traceEvents": [...]}`` with process-name
    metadata — the parent process is labelled ``repro``, every other
    pid ``repro-worker-<pid>`` — so Perfetto groups worker spans under
    their own process tracks.
    """
    spans = drain() if batch is None else list(batch)
    parent = os.getpid()
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {
                "name": "repro" if pid == parent else f"repro-worker-{pid}"
            },
        }
        for pid in sorted({e["pid"] for e in spans})
    ]
    payload = {
        "traceEvents": metadata + spans,
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return len(spans)

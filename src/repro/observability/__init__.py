"""Cross-layer observability: metrics registry, span tracing, telemetry.

Three pieces, all stdlib-only:

* :mod:`repro.observability.metrics` — the process-wide
  :data:`~repro.observability.metrics.REGISTRY` of counters, gauges and
  histograms every layer reports into, with snapshot/delta/merge for
  crossing the process-pool boundary and JSON + Prometheus exposition.
* :mod:`repro.observability.tracing` — ``span(...)`` context managers
  recording Chrome trace events (near-free when disabled), merged
  across workers into one Perfetto-viewable trace.
* The chunk-telemetry piggyback below: worker entry points run under
  :func:`capture`, which wraps the chunk's results together with the
  worker's metric delta and spans in a picklable
  :class:`ChunkTelemetry`; the engine calls :func:`absorb` on every
  chunk result, folding worker telemetry into the parent registry and
  trace while returning the *untouched* results object — so sweep
  output stays byte-identical with instrumentation on or off.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.observability import metrics, tracing
from repro.observability.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from repro.observability.tracing import span, write_chrome_trace

__all__ = [
    "ChunkTelemetry",
    "MetricsRegistry",
    "REGISTRY",
    "absorb",
    "capture",
    "counter",
    "gauge",
    "histogram",
    "metrics",
    "span",
    "telemetry_options",
    "tracing",
    "write_chrome_trace",
]


@dataclass
class ChunkTelemetry:
    """A chunk's results plus the telemetry accrued computing them.

    Picklable by construction: the metrics delta is plain dicts/tuples
    and spans are plain dicts (Chrome trace events).  ``started`` is
    the worker's wall-clock start, letting the engine measure how long
    the chunk waited in the pool queue.
    """

    results: Any
    metrics_delta: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    started: float = 0.0


def telemetry_options() -> dict[str, Any]:
    """Options to ship to a worker-process chunk entry point.

    ``parent`` pins the dispatching pid: :func:`capture` only engages
    when it runs in a *different* process, so serial/thread executors
    (and the single-batch in-parent shortcut) record straight into the
    shared registry with no delta round-trip.
    """
    return {"trace": tracing.is_enabled(), "parent": os.getpid()}


def capture(
    options: dict[str, Any] | None, fn: Callable[[], Any]
) -> Any:
    """Run *fn* under worker-side telemetry capture.

    With falsy *options*, or when still in the dispatching process
    (serial/thread executors — the registry and trace buffer are
    already shared), this is a plain call returning *fn*'s result
    unchanged.  Otherwise the worker syncs its tracing flag to the
    parent's, snapshots the registry, runs the chunk, and wraps the
    results with the metric delta (and spans, when tracing) for the
    engine to :func:`absorb`.
    """
    if not options or options.get("parent") == os.getpid():
        return fn()
    trace = bool(options.get("trace"))
    tracing.set_enabled(trace)
    if trace:
        tracing.drain()  # discard events from before this chunk
    started = time.time()
    before = REGISTRY.state()
    results = fn()
    return ChunkTelemetry(
        results=results,
        metrics_delta=REGISTRY.delta_since(before),
        spans=tracing.drain() if trace else [],
        started=started,
    )


def absorb(chunk_result: Any, dispatched: float | None = None) -> Any:
    """Fold a chunk's telemetry into this process; return bare results.

    Results that are not :class:`ChunkTelemetry` pass through
    untouched, so serial/thread chunk results (recorded directly into
    the shared registry) need no special-casing at call sites.  When
    *dispatched* (parent wall-clock at submit time) is given, the
    queue wait until the worker started is observed into
    ``repro_chunk_queue_wait_seconds``.
    """
    if not isinstance(chunk_result, ChunkTelemetry):
        return chunk_result
    REGISTRY.merge(chunk_result.metrics_delta)
    tracing.extend(chunk_result.spans)
    if dispatched is not None and chunk_result.started:
        _QUEUE_WAIT.observe(max(0.0, chunk_result.started - dispatched))
    return chunk_result.results


_QUEUE_WAIT = histogram(
    "repro_chunk_queue_wait_seconds",
    "Wall-clock wait between chunk dispatch and worker pickup.",
).labels()

"""Circuit breakers for degradable subsystems.

A :class:`CircuitBreaker` counts *consecutive* failures; once the
threshold trips, ``allow()`` answers ``False`` until ``recovery_time``
has elapsed, at which point a single probe is let through (half-open).
A probe success closes the breaker, a probe failure re-opens it for a
fresh recovery window.

Breakers here guard paths that have a cheap, always-correct fallback —
the iterative steady-state solver degrades to the direct factorisation
— so "open" means "stop paying the failure latency and take the
fallback", never "fail the request".  State changes are mirrored into
the metrics registry (``repro_breaker_opens_total``,
``repro_breaker_open``) and a process-wide registry feeds
``/healthz``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro import observability

__all__ = ["CircuitBreaker", "breaker", "breaker_states", "reset_breakers"]

_OPENS = observability.counter(
    "repro_breaker_opens_total",
    "Circuit breaker transitions to the open state.",
)
_OPEN_GAUGE = observability.gauge(
    "repro_breaker_open",
    "Whether a circuit breaker is currently open (1) or closed (0).",
)

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open recovery."""

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_time < 0.0:
            raise ValueError(f"recovery_time must be >= 0, got {recovery_time}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return _CLOSED
        if self._clock() - self._opened_at >= self.recovery_time:
            return _HALF_OPEN
        return _OPEN

    def allow(self) -> bool:
        """May the guarded path be attempted right now?

        In the half-open state only one caller wins the probe; others
        keep taking the fallback until the probe resolves.
        """

        with self._lock:
            state = self._state_locked()
            if state == _CLOSED:
                return True
            if state == _HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False
            _OPEN_GAUGE.set(0, name=self.name)

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            self._failures += 1
            was_open = self._opened_at is not None
            if self._failures >= self.failure_threshold or was_open:
                self._opened_at = self._clock()
                if not was_open:
                    self.opens += 1
                    _OPENS.inc(name=self.name)
                _OPEN_GAUGE.set(1, name=self.name)

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self._state_locked(),
                "failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "opens": self.opens,
            }


_REGISTRY: dict[str, CircuitBreaker] = {}
_REGISTRY_LOCK = threading.Lock()


def breaker(
    name: str,
    *,
    failure_threshold: int = 3,
    recovery_time: float = 30.0,
) -> CircuitBreaker:
    """Fetch (or create) the process-wide breaker called ``name``."""

    with _REGISTRY_LOCK:
        found = _REGISTRY.get(name)
        if found is None:
            found = CircuitBreaker(
                name,
                failure_threshold=failure_threshold,
                recovery_time=recovery_time,
            )
            _REGISTRY[name] = found
        return found


def breaker_states() -> dict[str, dict[str, object]]:
    """Snapshot of every registered breaker, for ``/healthz``."""

    with _REGISTRY_LOCK:
        return {name: brk.snapshot() for name, brk in sorted(_REGISTRY.items())}


def reset_breakers() -> None:
    """Drop all registered breakers (test isolation)."""

    with _REGISTRY_LOCK:
        _REGISTRY.clear()

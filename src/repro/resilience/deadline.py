"""Monotonic time budgets for requests.

A :class:`Deadline` is created once at the edge (service request
parsing, CLI flag) and carried down the stack; cheap ``check()`` calls
at natural pause points — chunk-dispatch boundaries in
:class:`~repro.evaluation.engine.SweepEngine` — convert an exhausted
budget into the typed :class:`~repro.errors.DeadlineExceeded` so the
service can answer a prompt 504 and the CLI a distinct exit code,
instead of grinding through the remaining chunks of a sweep nobody is
waiting for anymore.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import DeadlineExceeded

__all__ = ["Deadline"]


@dataclass(frozen=True)
class Deadline:
    """A fixed point on the monotonic clock that work must not outlive."""

    expires_at: float
    budget: float
    clock: Callable[[], float] = field(default=time.monotonic, repr=False, compare=False)

    @classmethod
    def after(cls, seconds: float, *, clock: Callable[[], float] = time.monotonic) -> Deadline:
        if seconds <= 0.0:
            raise ValueError(f"deadline budget must be > 0 seconds, got {seconds}")
        return cls(expires_at=clock() + seconds, budget=seconds, clock=clock)

    @classmethod
    def after_ms(cls, ms: float, *, clock: Callable[[], float] = time.monotonic) -> Deadline:
        return cls.after(ms / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""

        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str = "work") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""

        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceeded(
                f"deadline of {self.budget * 1000.0:.0f} ms exceeded "
                f"({-remaining * 1000.0:.0f} ms over budget) during {label}"
            )

"""Resilience layer: deadlines, retries, breakers, fault injection.

The paper's subject is keeping redundant systems available while
patches (and failures) roll through them; this package makes the
evaluation stack itself practice that discipline.  Four small,
orthogonal primitives, all stdlib-only and deterministic:

* :class:`~repro.resilience.retry.RetryPolicy` — bounded attempts with
  deterministic exponential backoff (no jitter, so tests and fault
  drills replay identically).  Used by the pool executors (worker-death
  recycle), the persistent sqlite cache (``busy``/``locked`` retries)
  and :class:`~repro.evaluation.service.ServiceClient` (503 +
  ``Retry-After``).
* :class:`~repro.resilience.deadline.Deadline` — a monotonic time
  budget carried through a request (``deadline_ms`` on ``/sweep`` and
  ``/timeline``, ``--deadline`` on the CLI), checked between chunk
  dispatches and raised as the typed
  :class:`~repro.errors.DeadlineExceeded`.
* :class:`~repro.resilience.breaker.CircuitBreaker` — consecutive
  failures open the breaker; while open, callers route to their
  fallback without re-attempting (the iterative steady-state solver
  degrades to the direct factorisation this way).  Breaker state is
  surfaced in ``/healthz`` and the metrics registry.
* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness: ``REPRO_FAULTS="cache.write:error@2;worker.chunk:kill@1"``
  arms named fault points wired into cache writes, shared-memory
  attach, solver solves and worker chunk entry, so every recovery path
  can be provoked on demand and asserted byte-identical to a fault-free
  run.
"""

from __future__ import annotations

from repro.errors import DeadlineExceeded, FaultInjected
from repro.resilience.breaker import CircuitBreaker, breaker, breaker_states
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FaultPlan, fault_point
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjected",
    "FaultPlan",
    "RetryPolicy",
    "breaker",
    "breaker_states",
    "fault_point",
]

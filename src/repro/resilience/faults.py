"""Deterministic fault injection for recovery-path testing.

A :class:`FaultPlan` is parsed from ``REPRO_FAULTS``, a semicolon
-separated list of ``point:action@n`` specs::

    REPRO_FAULTS="cache.write:error@2;worker.chunk:kill@1;solver.iterative:fail@1"

* ``point`` names an instrumented site (see the table below).
* ``action`` is one of ``error``/``fail`` (raise the exception the
  site provided, or :class:`~repro.errors.FaultInjected`) or ``kill``
  (``os._exit(1)`` — simulates a worker death).
* ``@n`` fires the fault on the *n*-th arrival at that point
  (1-based; defaults to 1).

Each armed spec fires **exactly once per plan**, across all processes:
the parent materialises a token directory (``REPRO_FAULTS_STATE``),
forked pool workers inherit it, and firing requires winning an
``O_CREAT | O_EXCL`` claim on the spec's token file.  That one-shot
guarantee is what lets chaos tests assert byte-identical output — the
fault fires, the recovery path (recycle, retry, degrade, breaker) runs
once, and the re-executed work proceeds unfaulted.

``worker_only`` points consult ``REPRO_FAULTS_PARENT`` (set alongside
the state dir) and never fire in the coordinating process, so a
``worker.chunk:kill`` takes down a pool worker rather than the sweep
itself when running under the serial executor.

Instrumented points:

========================  ====================================================
``cache.write``           :meth:`PersistentEvaluationCache.put` (sqlite write)
``cache.read``            :meth:`PersistentEvaluationCache.get` (sqlite read)
``shared.attach``         shared-memory segment attach in worker init
``worker.chunk``          chunk-entry in pool workers (``worker_only``)
``solver.iterative``      iterative steady-state core
``solver.transient``      batch transient distribution solve
``shard.request``         per-attempt send in the shard coordinator
========================  ====================================================

With ``REPRO_FAULTS`` unset, :func:`fault_point` is a dictionary probe
and a ``None`` check — effectively free on hot paths.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass

from repro import observability
from repro.errors import FaultInjected, ValidationError

__all__ = ["FaultPlan", "FaultSpec", "active_plan", "fault_point", "reset"]

ENV_PLAN = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_STATE"
ENV_PARENT = "REPRO_FAULTS_PARENT"

_ACTIONS = frozenset({"error", "fail", "kill"})

_INJECTED = observability.counter(
    "repro_faults_injected_total",
    "Faults fired by the deterministic injection harness.",
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: fire ``action`` on hit number ``hit`` at ``point``."""

    point: str
    action: str
    hit: int

    @classmethod
    def parse(cls, text: str) -> FaultSpec:
        spec = text.strip()
        point, sep, rest = spec.partition(":")
        if not sep or not point.strip():
            raise ValidationError(
                f"invalid fault spec {spec!r}: expected 'point:action[@n]'"
            )
        action, _, count = rest.partition("@")
        action = action.strip().lower()
        if action not in _ACTIONS:
            raise ValidationError(
                f"invalid fault action {action!r} in {spec!r}: "
                f"expected one of {sorted(_ACTIONS)}"
            )
        hit = 1
        if count.strip():
            try:
                hit = int(count.strip())
            except ValueError:
                raise ValidationError(
                    f"invalid fault hit count {count!r} in {spec!r}"
                ) from None
            if hit < 1:
                raise ValidationError(f"fault hit count must be >= 1 in {spec!r}")
        return cls(point=point.strip(), action=action, hit=hit)

    @property
    def token(self) -> str:
        return f"{self.point}.{self.action}.{self.hit}".replace(os.sep, "_")


class FaultPlan:
    """The set of armed faults for this process tree."""

    def __init__(self, specs: list[FaultSpec], state_dir: str, parent_pid: int) -> None:
        self._by_point: dict[str, list[FaultSpec]] = {}
        for spec in specs:
            self._by_point.setdefault(spec.point, []).append(spec)
        self._state_dir = state_dir
        self._parent_pid = parent_pid
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> FaultPlan | None:
        env = os.environ if environ is None else environ
        raw = env.get(ENV_PLAN, "").strip()
        if not raw:
            return None
        specs = [FaultSpec.parse(part) for part in raw.split(";") if part.strip()]
        if not specs:
            return None
        state_dir = env.get(ENV_STATE, "").strip()
        if not state_dir:
            # First process to activate the plan owns the token dir;
            # exporting it (and our pid) lets forked workers share
            # one-shot state and worker_only gating.
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
            os.environ[ENV_STATE] = state_dir
            os.environ[ENV_PARENT] = str(os.getpid())
        parent_pid = int(env.get(ENV_PARENT, os.getpid()) or os.getpid())
        return cls(specs, state_dir, parent_pid)

    def _claim(self, spec: FaultSpec) -> bool:
        """Atomically claim the one-shot token; True if we won."""

        path = os.path.join(self._state_dir, spec.token)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(str(os.getpid()))
        return True

    def trigger(
        self,
        point: str,
        *,
        error: BaseException | None = None,
        worker_only: bool = False,
    ) -> None:
        specs = self._by_point.get(point)
        if specs is None:
            return
        if worker_only and os.getpid() == self._parent_pid:
            return
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
        for spec in specs:
            if spec.hit != hit:
                continue
            if not self._claim(spec):
                continue
            _INJECTED.inc(point=point)
            if spec.action == "kill":
                # Simulated hard worker death: no cleanup, no excepthook.
                os._exit(1)
            raise error if error is not None else FaultInjected(
                f"fault injected at {point} (hit {hit})"
            )


_ACTIVE: FaultPlan | None = None
_ACTIVE_LOADED = False
_ACTIVE_LOCK = threading.Lock()


def active_plan() -> FaultPlan | None:
    """The plan armed via ``REPRO_FAULTS``, loaded once per process."""

    global _ACTIVE, _ACTIVE_LOADED
    if _ACTIVE_LOADED:
        return _ACTIVE
    with _ACTIVE_LOCK:
        if not _ACTIVE_LOADED:
            _ACTIVE = FaultPlan.from_env()
            _ACTIVE_LOADED = True
    return _ACTIVE


def fault_point(
    point: str,
    *,
    error: BaseException | None = None,
    worker_only: bool = False,
) -> None:
    """Declare a named fault site; fires the armed action, if any.

    ``error`` is the exception a matching ``error``/``fail`` action
    raises (sites pass the exception type their recovery path handles,
    e.g. the cache passes ``sqlite3.OperationalError("...locked...")``);
    without it, :class:`FaultInjected` is raised.
    """

    plan = active_plan()
    if plan is not None:
        plan.trigger(point, error=error, worker_only=worker_only)


def reset() -> None:
    """Re-read ``REPRO_FAULTS`` on next use (test isolation)."""

    global _ACTIVE, _ACTIVE_LOADED
    with _ACTIVE_LOCK:
        _ACTIVE = None
        _ACTIVE_LOADED = False

"""Bounded, deterministic retry with exponential backoff.

A :class:`RetryPolicy` describes *how often* and *how patiently* to
retry; it never decides *what* is retryable — callers pass either an
exception tuple (``retry_on``) or a predicate (``should_retry``).  The
backoff schedule is fully deterministic (no jitter): attempt ``k``
(1-based) sleeps ``min(base_delay * multiplier**(k-1), max_delay)``
before attempt ``k+1``.  Determinism matters here more than thundering
-herd avoidance — the whole evaluation stack guarantees byte-identical
results across executors and fault drills, and a reproducible retry
cadence keeps chaos tests stable.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with deterministic exponential backoff.

    Parameters
    ----------
    attempts:
        Total number of attempts (the first call plus up to
        ``attempts - 1`` retries).  Must be >= 1.
    base_delay:
        Sleep before the first retry, in seconds.  ``0.0`` disables
        sleeping entirely (useful for executor recycles, where the
        respawn itself is the backoff).
    multiplier:
        Exponential growth factor applied per retry.
    max_delay:
        Upper bound on any single sleep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0.0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < 0.0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (1-based)."""

        if retry_index < 1:
            raise ValueError(f"retry_index must be >= 1, got {retry_index}")
        return min(self.base_delay * self.multiplier ** (retry_index - 1), self.max_delay)

    def delays(self) -> Sequence[float]:
        """The full deterministic backoff schedule."""

        return tuple(self.delay(i) for i in range(1, self.attempts))

    def call(
        self,
        fn: Callable[[], Any],
        *,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        should_retry: Callable[[BaseException], bool] | None = None,
        before_retry: Callable[[int, BaseException], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Run ``fn`` with up to :attr:`attempts` tries.

        ``should_retry`` (when given) is consulted after the exception
        matches ``retry_on``; returning ``False`` re-raises
        immediately.  ``before_retry(retry_index, exc)`` runs after the
        backoff decision but before the sleep — executors use it to
        recycle a broken pool.  The final exhausted exception is
        re-raised unchanged.
        """

        last_error: BaseException | None = None
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                if should_retry is not None and not should_retry(exc):
                    raise
                last_error = exc
                if attempt == self.attempts:
                    raise
                if before_retry is not None:
                    before_retry(attempt, exc)
                pause = self.delay(attempt)
                if pause > 0.0:
                    sleep(pause)
        raise AssertionError(f"unreachable retry state: {last_error!r}")  # pragma: no cover

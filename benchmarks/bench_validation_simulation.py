"""Validation: discrete-event simulation vs the analytic SRN pipeline.

Simulates the upper-layer network model and checks the time-averaged COA
against the exact steady-state value — the end-to-end correctness check
for the whole engine (builder, reachability, elimination, solver).
"""

from __future__ import annotations

from repro.availability import NetworkAvailabilityModel, coa_reward
from repro.srn import simulate


def _simulate_coa(aggregates, horizon):
    capacities = {"dns": 1, "web": 2, "app": 2, "db": 1}
    model = NetworkAvailabilityModel(capacities, aggregates)
    net = model.build_srn()
    result = simulate(net, coa_reward(capacities), horizon=horizon, seed=2017)
    return result, model.capacity_oriented_availability()


def test_validation_simulation(benchmark, availability_evaluator, example_design):
    aggregates = availability_evaluator.aggregates_for(example_design)
    result, analytic = benchmark(_simulate_coa, aggregates, 2_000_000.0)

    assert abs(result.time_averaged_reward - analytic) < 5e-4
    print("\n[validation] simulated vs analytic COA (example network)")
    print(f"  analytic  = {analytic:.6f}")
    print(
        f"  simulated = {result.time_averaged_reward:.6f}"
        f" +/- {result.confidence_halfwidth:.6f}"
        f" ({result.transitions_fired} firings)"
    )

"""Figure 7: six-metric radar comparison plus the Eq. (4) regions.

Paper results after patch: region 1 (phi=0.2, xi=9, omega=2, kappa=1,
psi=0.9962) selects design 4; region 2 (phi=0.1, xi=7, omega=1, kappa=1,
psi=0.9961) selects design 2.
"""

from __future__ import annotations

from repro.evaluation.charts import radar_data, render_radar_table
from repro.evaluation.requirements import (
    PAPER_REGION_1_MULTI_METRIC,
    PAPER_REGION_2_MULTI_METRIC,
    satisfying_designs,
)


def _radar_both_sides(design_evaluations):
    return (
        radar_data(design_evaluations, after_patch=False),
        radar_data(design_evaluations, after_patch=True),
    )


def test_fig7_radar(benchmark, design_evaluations):
    before, after = benchmark(_radar_both_sides, design_evaluations)

    assert len(before) == len(after) == 5
    for series in after:
        assert set(series.values) == {"NoEP", "COA", "ASP", "AIM", "NoEV", "NoAP"}

    region1 = satisfying_designs(design_evaluations, PAPER_REGION_1_MULTI_METRIC)
    region2 = satisfying_designs(design_evaluations, PAPER_REGION_2_MULTI_METRIC)
    assert [e.label for e in region1] == ["1 DNS + 1 WEB + 2 APP + 1 DB"]
    assert [e.label for e in region2] == ["2 DNS + 1 WEB + 1 APP + 1 DB"]

    print("\n[Fig. 7a] metric values before patch")
    print(render_radar_table(before))
    print("\n[Fig. 7b] metric values after patch")
    print(render_radar_table(after))
    print(f"  Eq.4 region 1: {[e.label for e in region1]}")
    print(f"  Eq.4 region 2: {[e.label for e in region2]}")

"""Table VI: the COA reward and the example network's availability.

Solves the upper-layer SRN for 1 DNS + 2 WEB + 2 APP + 1 DB under the
Table VI reward; the paper reports COA ~= 0.99707.  The closed-form
product solution must agree to solver precision.
"""

from __future__ import annotations

from repro.availability import NetworkAvailabilityModel


def _solve_network(aggregates):
    model = NetworkAvailabilityModel(
        {"dns": 1, "web": 2, "app": 2, "db": 1}, aggregates
    )
    return model, model.capacity_oriented_availability()


def test_table6_coa(benchmark, availability_evaluator, example_design):
    aggregates = availability_evaluator.aggregates_for(example_design)
    model, coa = benchmark(_solve_network, aggregates)

    assert abs(coa - 0.99707) < 5e-6
    closed = availability_evaluator.coa_closed_form(example_design)
    assert abs(coa - closed) < 1e-12

    print("\n[Table VI] capacity oriented availability, example network")
    print(f"  COA (SRN)          = {coa:.6f}  (paper ~0.99707)")
    print(f"  COA (product form) = {closed:.6f}")
    print(f"  system availability = {model.system_availability():.6f}")
    print(f"  expected up servers = {model.expected_running_servers():.4f} / 6")

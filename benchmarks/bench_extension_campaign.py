"""Extension: staged patch-rollout campaigns by piecewise uniformisation.

The PR 5 tentpole acceptance bench: transient COA curves for a whole
design space (27 designs x 32 time points) under a three-phase staged
rollout (canary -> ramp -> fleet), served by
:func:`repro.ctmc.transient.transient_piecewise` — one uniformised
batch pass per campaign phase, the state vector carried across phase
boundaries — against the brute-force per-phase re-uniformised oracle
that, for every single time point, re-propagates the state vector
through each earlier phase and runs one more single-time pass.

Two assertions:

* **determinism** — the piecewise batch result is byte-identical to the
  per-time oracle (independently constructed solvers), and the
  single-phase degenerate campaign is byte-identical to the stationary
  timeline across the whole space;
* **speedup** — the piecewise path is >= 5x faster than the brute-force
  oracle (measured ~10-25x: 3 passes per design instead of ~60+),
  printed as a ``BENCH`` JSON line for the CI trajectory artifact.
"""

from __future__ import annotations

import json
import math
import time

import numpy as np

from repro.availability.grouped import CoaStructure  # noqa: F401 (doc link)
from repro.ctmc.transient import transient_piecewise
from repro.evaluation import (
    default_time_grid,
    enumerate_designs,
    evaluate_timeline,
)
from repro.evaluation.availability import scale_patch_rates
from repro.patching import BIG_BANG, CANARY_THEN_FLEET

ROLES = ("dns", "web", "app")
MAX_REPLICAS = 3
POINTS = 32

#: The staged rollout under test: multipliers and durations of
#: CANARY_THEN_FLEET (48 h canary at x0.1, 120 h ramp at x0.5, fleet).
PHASES = [
    (phase.rate_multiplier, phase.duration_hours)
    for phase in CANARY_THEN_FLEET.phases[:-1]
] + [(CANARY_THEN_FLEET.phases[-1].rate_multiplier, math.inf)]


def _prepared_structures(availability_evaluator):
    """Canonical structure + slot rates per design (shared patterns)."""
    designs = list(enumerate_designs(ROLES, max_replicas=MAX_REPLICAS))
    return [
        (design, *availability_evaluator.coa_structure_for(design))
        for design in designs
    ]


def _phase_solvers(structure, rates):
    """One uniformised transient solver per campaign phase."""
    return [
        (
            structure.transient_solver(scale_patch_rates(rates, multiplier)),
            duration,
        )
        for multiplier, duration in PHASES
    ]


def test_campaign_piecewise_speedup(availability_evaluator):
    """Piecewise >= 5x the brute-force per-time oracle, bit-identical."""
    prepared = _prepared_structures(availability_evaluator)
    times = list(default_time_grid(720.0, POINTS))
    assert len(prepared) == 27 and len(PHASES) == 3  # acceptance shape

    boundaries = []
    start = 0.0
    for _, duration in PHASES[:-1]:
        start += duration
        boundaries.append(start)

    def oracle_sweep():
        """Per time point: re-propagate through every earlier phase."""
        curves = []
        for _, structure, rates in prepared:
            segments = _phase_solvers(structure, rates)
            values = np.empty(len(times))
            for i, t in enumerate(times):
                carry = structure.initial
                start = 0.0
                for position, (solver, duration) in enumerate(segments):
                    last = position == len(segments) - 1
                    end = math.inf if last else start + duration
                    if start <= t < end:
                        dist = solver.distributions(carry, [t - start])[0]
                        values[i] = float(dist @ structure.reward)
                        break
                    carry = solver.propagate(carry, duration)
                    start = end
            curves.append(values)
        return curves

    def piecewise_sweep():
        """One batch pass per phase, boundaries carried in-pass."""
        curves = []
        for _, structure, rates in prepared:
            segments = _phase_solvers(structure, rates)
            dists = transient_piecewise(segments, structure.initial, times)
            values = np.empty(len(times))
            for i in range(len(dists)):
                values[i] = float(dists[i] @ structure.reward)
            curves.append(values)
        return curves

    def timed(fn, trials=3):
        # Min over trials: robust to scheduler preemption on shared CI.
        best, values = float("inf"), None
        for _ in range(trials):
            start = time.perf_counter()
            values = fn()
            best = min(best, time.perf_counter() - start)
        return best, values

    oracle_time, oracle_curves = timed(oracle_sweep)
    piecewise_time, piecewise_curves = timed(piecewise_sweep, trials=5)

    # determinism: piecewise == brute-force oracle, byte for byte
    for oracle_curve, piecewise_curve in zip(oracle_curves, piecewise_curves):
        assert piecewise_curve.tobytes() == oracle_curve.tobytes()
    # the staged curves really are staged: all-up at t = 0, and during
    # the canary phase COA sits strictly above the stationary curve
    assert all(curve[0] == 1.0 for curve in piecewise_curves)
    for (_, structure, rates), curve in zip(prepared[:3], piecewise_curves[:3]):
        stationary = structure.transient_coa(rates, times[:2])
        assert curve[1] > stationary[1]

    speedup = oracle_time / piecewise_time
    print(
        "\nBENCH "
        + json.dumps(
            {
                "bench": "campaign_piecewise_transient",
                "designs": len(prepared),
                "phases": len(PHASES),
                "time_points": len(times),
                "oracle_s": round(oracle_time, 4),
                "piecewise_s": round(piecewise_time, 4),
                "speedup": round(speedup, 1),
            }
        )
    )
    assert speedup >= 5.0, f"piecewise campaign only {speedup:.1f}x faster"


def test_single_phase_campaign_degenerates_bitwise(case_study, critical_policy):
    """BIG_BANG timelines equal the stationary ones across the space."""
    designs = list(enumerate_designs(ROLES, max_replicas=2))
    times = default_time_grid(720.0, 8)
    for design in designs:
        plain = evaluate_timeline(
            design, times, case_study=case_study, policy=critical_policy
        )
        staged = evaluate_timeline(
            design,
            times,
            case_study=case_study,
            policy=critical_policy,
            campaign=BIG_BANG,
        )
        assert staged.coa == plain.coa
        assert staged.completion_probability == plain.completion_probability
        assert staged.unpatched_fraction == plain.unpatched_fraction
        assert staged.mean_time_to_completion == plain.mean_time_to_completion


def test_staged_campaign_timeline_sweep(case_study, critical_policy):
    """The full pipeline: 27-design staged-campaign sweep, phase-aware."""
    designs = list(enumerate_designs(ROLES, max_replicas=MAX_REPLICAS))
    times = default_time_grid(720.0, POINTS)
    from repro.evaluation import evaluate_timelines

    staged = evaluate_timelines(
        designs, times, case_study, critical_policy, campaign=CANARY_THEN_FLEET
    )
    plain = evaluate_timelines(designs, times, case_study, critical_policy)
    assert len(staged) == 27
    for s, p in zip(staged, plain):
        assert s.phase_starts == (0.0, 48.0, 168.0)
        # canary-first: slower exposure decay, later completion
        assert all(
            b >= a - 1e-12
            for a, b in zip(p.unpatched_fraction, s.unpatched_fraction)
        )
        assert s.mean_time_to_completion > p.mean_time_to_completion

"""Extension: multi-cycle patch lifecycle (paper Section III future work).

Six monthly cycles with a synthetic disclosure feed: the critical-only
policy patches every severe vulnerability but accumulates a
medium-severity backlog, which the patch-everything policy avoids.
"""

from __future__ import annotations

from repro.patching import (
    CriticalVulnerabilityPolicy,
    PatchAllPolicy,
    SyntheticDisclosureFeed,
    simulate_patch_lifecycle,
)

CYCLES = 6


def _run_lifecycle(case_study, five_designs):
    design = five_designs[0]
    outcomes = {}
    for label, policy in (
        ("critical-only", CriticalVulnerabilityPolicy()),
        ("patch-all", PatchAllPolicy()),
    ):
        feed = SyntheticDisclosureFeed(rate_per_product=1.5, seed=2017)
        outcomes[label] = simulate_patch_lifecycle(
            case_study, design, policy, cycles=CYCLES, feed=feed
        )
    return outcomes


def test_extension_lifecycle(benchmark, case_study, five_designs):
    outcomes = benchmark(_run_lifecycle, case_study, five_designs)

    critical = outcomes["critical-only"]
    everything = outcomes["patch-all"]
    assert critical[-1].backlog > critical[0].backlog
    assert all(o.backlog == 0 for o in everything)
    assert all(
        o.after.number_of_exploitable_vulnerabilities == 0 for o in everything
    )

    print(f"\n[extension] {CYCLES} monthly cycles, synthetic disclosure feed")
    print("  cycle   critical-only backlog / NoEV-after   patch-all NoEV-after")
    for crit, full in zip(critical, everything):
        print(
            f"  {crit.cycle:5d}   {crit.backlog:7d} / {crit.after.number_of_exploitable_vulnerabilities:4d}"
            f"                      {full.after.number_of_exploitable_vulnerabilities:4d}"
        )

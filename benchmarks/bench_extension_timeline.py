"""Extension: batched patch-timeline analysis over a design space.

The tentpole acceptance bench: transient availability curves for a
whole design space (27 designs x 40 time points over the monthly patch
window) served by :class:`repro.ctmc.transient.BatchTransientSolver` —
one uniformisation, one Poisson-weight table and one iterate stream per
design — against the naive per-design per-time loop that re-runs the
full uniformisation for every single point (the pre-batch behaviour of
``transient_rewards``).

Two assertions:

* **determinism** — the batch result is byte-identical to the per-time
  :func:`repro.ctmc.transient.transient_rewards` oracle loop, and
  numerically equal (1e-9) to the independent
  :func:`transient_distribution` implementation;
* **speedup** — the batch path is >= 10x faster than the naive loop
  (measured ~15-40x), printed as a ``BENCH`` JSON line for CI logs.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.availability.coa import coa_reward
from repro.ctmc.transient import (
    BatchTransientSolver,
    transient_distribution,
    transient_rewards,
)
from repro.evaluation import default_time_grid, enumerate_designs, evaluate_timelines

ROLES = ("dns", "web", "app")
MAX_REPLICAS = 3
POINTS = 40


def _prepared_models(availability_evaluator):
    """Solved upper-layer chains + reward vectors, one per design."""
    designs = list(enumerate_designs(ROLES, max_replicas=MAX_REPLICAS))
    prepared = []
    for design in designs:
        solution = availability_evaluator.network_model(design).solve()
        rewards = np.asarray(solution.reward_vector(coa_reward(design.counts)))
        prepared.append(
            (design, solution.chain, solution.graph.initial_distribution, rewards)
        )
    return prepared


def test_timeline_batch_speedup(availability_evaluator):
    """Batch >= 10x naive per-design per-time loop, byte-deterministic."""
    prepared = _prepared_models(availability_evaluator)
    times = list(default_time_grid(720.0, POINTS))
    assert len(prepared) >= 20 and len(times) >= 20  # acceptance floor

    def naive_sweep():
        return [
            np.array(
                [
                    float(transient_distribution(chain, initial, t) @ rewards)
                    for t in times
                ]
            )
            for _, chain, initial, rewards in prepared
        ]

    def batch_sweep():
        return [
            BatchTransientSolver(chain).rewards(initial, rewards, times)
            for _, chain, initial, rewards in prepared
        ]

    def timed(fn, trials=3):
        # Min over trials: robust to scheduler preemption on shared CI.
        best, values = float("inf"), None
        for _ in range(trials):
            start = time.perf_counter()
            values = fn()
            best = min(best, time.perf_counter() - start)
        return best, values

    naive_time, naive_curves = timed(naive_sweep)
    batch_time, batch_curves = timed(batch_sweep, trials=5)

    # determinism: batch == per-time oracle loop, byte for byte
    for (_, chain, initial, rewards), batch_curve in zip(prepared, batch_curves):
        oracle = transient_rewards(chain, initial, rewards, times)
        assert batch_curve.tobytes() == oracle.tobytes()
    # accuracy vs the independent single-time implementation
    for naive_curve, batch_curve in zip(naive_curves, batch_curves):
        assert np.abs(naive_curve - batch_curve).max() < 1e-9

    speedup = naive_time / batch_time
    print(
        "\nBENCH "
        + json.dumps(
            {
                "bench": "timeline_batch_transient",
                "designs": len(prepared),
                "time_points": len(times),
                "naive_s": round(naive_time, 4),
                "batch_s": round(batch_time, 4),
                "speedup": round(speedup, 1),
            }
        )
    )
    assert speedup >= 10.0, f"batch transient only {speedup:.1f}x faster"


def test_timeline_curves_over_design_space(benchmark, case_study, critical_policy):
    """The full pipeline: 27-design timeline sweep through the engine."""
    designs = list(enumerate_designs(ROLES, max_replicas=MAX_REPLICAS))
    times = default_time_grid(720.0, POINTS)

    timelines = benchmark(
        evaluate_timelines, designs, times, case_study, critical_policy
    )

    assert len(timelines) == 27
    for timeline in timelines:
        assert timeline.coa[0] == 1.0
        assert timeline.completion_probability[0] == 0.0
        assert min(timeline.coa) >= timeline.steady_coa - 1e-6
        assert timeline.mean_time_to_completion > 0
    # more redundancy -> slower campaign completion
    by_total = {}
    for timeline in timelines:
        total = timeline.design.total_servers
        by_total.setdefault(total, []).append(timeline.mean_time_to_completion)
    totals = sorted(by_total)
    means = [sum(by_total[t]) / len(by_total[t]) for t in totals]
    assert means == sorted(means)

    print("\n[extension] patch-timeline sweep (27 designs x 40 points)")
    print("  design                         MTTPC (h)   min COA")
    for timeline in timelines[:5]:
        print(
            f"  {timeline.label:<30} {timeline.mean_time_to_completion:8.1f}"
            f"  {timeline.min_coa:.6f}"
        )

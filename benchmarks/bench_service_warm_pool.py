"""Tentpole bench: the resident warm-pool evaluation service.

Every CLI sweep pays the full start-up bill: engine construction, the
lower-layer aggregate and per-pattern structure solves, the shared
memory segment build, and (for the process executor) spawning and
priming a fresh worker pool — then throws all of it away.  The warm
path (``repro serve`` / a persistent :class:`SweepEngine`) keeps the
pool, the primed workers, the shared segment and the caches resident,
so a repeated sweep costs only the dispatch.

Assertions on the paper's 27-design space (dns/web/app x 1..3):

* **speedup** — re-sweeping through one warm engine (persistent pool,
  result memo cleared between repeats so every design is genuinely
  re-dispatched) is >= 3x faster than the cold per-call path (a fresh
  process-executor engine per repeat), measured min-over-trials;
* **byte-identity** — warm results equal the cold results bit for bit,
  repeat after repeat, including after a pool recycle;
* **resilience** — SIGKILLing a warm worker between repeats costs one
  pool recycle, not a failed sweep, and the retried results are
  byte-identical too.
"""

from __future__ import annotations

import json
import os
import signal
import time

from repro.evaluation.engine import SweepEngine
from repro.evaluation.sweep import enumerate_designs

ROLES = ("dns", "web", "app")
MAX_REPLICAS = 3
TRIALS = 5

#: Reduced grid for the <60s CI smoke.
SMOKE_ROLES = ("dns", "web")
SMOKE_REPLICAS = 2


def _space():
    return list(enumerate_designs(ROLES, max_replicas=MAX_REPLICAS))


def _assert_identical(reference, results):
    assert len(reference) == len(results)
    for a, b in zip(reference, results):
        assert a.design == b.design
        assert a.before == b.before
        assert a.after == b.after
        assert a.after.coa.hex() == b.after.coa.hex()
        assert a.before.coa.hex() == b.before.coa.hex()


COLD_TRIALS = 3


def test_warm_pool_speedup():
    """Warm served sweeps >= 3x the cold per-call CLI, byte-identically."""
    import subprocess
    import sys
    from pathlib import Path

    import repro
    from repro.evaluation.service import EvaluationService

    designs = _space()
    assert len(designs) == 27  # the acceptance space
    arguments = [
        "--roles",
        ",".join(ROLES),
        "--max-replicas",
        str(MAX_REPLICAS),
        "--executor",
        "process",
        "--jobs",
        "2",
        "--json",
    ]
    env = dict(
        os.environ, PYTHONPATH=str(Path(repro.__file__).resolve().parents[1])
    )

    # Cold: what every per-call invocation pays — interpreter, imports,
    # case-study precompute, pool spawn, segment build — all discarded.
    cold_s, cold_payload = float("inf"), None
    for _ in range(COLD_TRIALS):
        start = time.perf_counter()
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", *arguments],
            env=env,
            capture_output=True,
            check=True,
        )
        cold_s = min(cold_s, time.perf_counter() - start)
        cold_payload = json.loads(completed.stdout)

    # Warm: the resident service — persistent pool, primed workers,
    # retained shared segment.  The engine memo and the service's
    # response memory are cleared between repeats, so every repeat
    # genuinely re-dispatches all 27 designs through the warm pool.
    service = EvaluationService(
        executor="process", max_workers=2, max_designs=64
    )
    client = service.start_in_thread()
    try:
        request = {"roles": list(ROLES), "max_replicas": MAX_REPLICAS}
        warm_payload = client.sweep(**request)  # priming call
        assert warm_payload == cold_payload  # byte-identical JSON payloads
        warm_s = float("inf")
        for _ in range(TRIALS):
            service.engine.clear_cache()
            service._responses.clear()
            start = time.perf_counter()
            warm_payload = client.sweep(**request)
            warm_s = min(warm_s, time.perf_counter() - start)
        assert warm_payload == cold_payload

        # Resilience: a killed warm worker costs one pool recycle, not
        # a failed request — and the retried sweep stays identical.
        pool = service.engine.executor._pool
        os.kill(next(iter(pool._processes)), signal.SIGKILL)
        service.engine.clear_cache()
        service._responses.clear()
        recycled_payload = client.sweep(**request)
        assert recycled_payload == cold_payload
        assert client.healthz()["engine"]["pool_recycles"] == 1
    finally:
        service.close()

    speedup = cold_s / warm_s
    print(
        "\nBENCH "
        + json.dumps(
            {
                "bench": "service_warm_pool",
                "designs": len(designs),
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "speedup": round(speedup, 1),
                "pool_recycles": 1,
            }
        )
    )
    assert speedup >= 3.0, f"warm service only {speedup:.1f}x faster"


CONTENTION_TRIALS = 3

#: Batch workload for the lane-contention cell: the scaled 6x4 space
#: takes ~300 ms per serial sweep (plus its per-context engine build on
#: the lane thread), long enough to dominate a 27-design interactive
#: request that gets stuck behind it.
CONTENTION_SCALED = "6x4"


def _contended_interactive_latency(lanes):
    """Min-over-trials latency of an interactive 27-design sweep while a
    batch ``--scaled`` sweep holds an engine lane; returns the latency
    and the final interactive payload for cross-cell parity."""
    import threading

    from repro.evaluation.service import EvaluationService

    best, payload = float("inf"), None
    with EvaluationService(
        executor="serial", max_designs=64, lanes=lanes
    ) as service:
        client = service.start_in_thread()
        for _ in range(CONTENTION_TRIALS):
            service.engine.clear_cache()
            service._responses.clear()
            done = threading.Event()

            def run_batch():
                client.sweep(scaled=CONTENTION_SCALED, priority="batch")
                done.set()

            batch = threading.Thread(target=run_batch)
            batch.start()
            # Only start the clock once the batch occupies its lane.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not done.is_set():
                lane_info = client.healthz()["lanes"]["lanes"]
                if any(
                    lane["context"] != "default" and lane["busy"]
                    for lane in lane_info
                ):
                    break
                time.sleep(0.002)
            start = time.perf_counter()
            payload = client.sweep(roles=list(ROLES), max_replicas=MAX_REPLICAS)
            best = min(best, time.perf_counter() - start)
            batch.join(timeout=180)
    return best, payload


def test_two_lane_contention():
    """One lane parks the interactive request behind the whole batch
    sweep; a second lane gives it its own warm engine.  Asserts >= 2x
    interactive latency improvement, with byte-identical payloads."""
    single_lane_s, single_payload = _contended_interactive_latency(1)
    two_lane_s, two_payload = _contended_interactive_latency(2)
    assert single_payload == two_payload  # lane pooling never changes results
    assert single_payload["design_count"] == 27
    speedup = single_lane_s / two_lane_s
    print(
        "\nBENCH "
        + json.dumps(
            {
                "bench": "service_two_lane_contention",
                "designs": 27,
                "single_lane_interactive_s": round(single_lane_s, 4),
                "two_lane_interactive_s": round(two_lane_s, 4),
                "speedup": round(speedup, 1),
            }
        )
    )
    assert speedup >= 2.0, f"two lanes only {speedup:.1f}x faster"


def test_service_smoke_parity(case_study, critical_policy):
    """CI smoke: one served request equals the direct engine, bit for bit
    (reduced grid, serial executor — no pool spawn in CI)."""
    from repro.evaluation.service import EvaluationService, sweep_response

    designs = list(
        enumerate_designs(SMOKE_ROLES, max_replicas=SMOKE_REPLICAS)
    )
    expected = sweep_response(
        list(SMOKE_ROLES),
        SMOKE_REPLICAS,
        None,
        False,
        "serial",
        SweepEngine(
            case_study=case_study, policy=critical_policy
        ).evaluate(designs),
    )
    service = EvaluationService(executor="serial")
    client = service.start_in_thread()
    try:
        served = client.sweep(
            roles=list(SMOKE_ROLES), max_replicas=SMOKE_REPLICAS
        )
        assert served == json.loads(json.dumps(expected))
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["counters"]["computed"] == 1
    finally:
        service.close()
    print(
        "\nBENCH "
        + json.dumps(
            {
                "bench": "service_smoke_parity",
                "designs": len(designs),
                "parity": "byte-identical",
            }
        )
    )

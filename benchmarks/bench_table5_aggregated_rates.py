"""Table V: aggregated patch/recovery rates for all four services.

Solves the four lower-layer SRNs and applies Eqs. (1)-(2).  Paper values:

    service   MTTP  patch rate  MTTR    recovery rate
    DNS       720   0.00139     0.6667  1.49992
    Web       720   0.00139     0.5834  1.71420
    App       720   0.00139     1.0001  0.99995
    DB        720   0.00139     0.9167  1.09085
"""

from __future__ import annotations

from repro.availability import aggregate_service, paper_server_parameters
from repro.evaluation.report import aggregated_rates_table

TABLE_V_RECOVERY = {
    "dns": 1.49992,
    "web": 1.71420,
    "app": 0.99995,
    "db": 1.09085,
}


def _aggregate_all():
    return {
        role: aggregate_service(params)
        for role, params in paper_server_parameters().items()
    }


def test_table5_aggregated_rates(benchmark):
    aggregates = benchmark(_aggregate_all)
    for role, expected in TABLE_V_RECOVERY.items():
        aggregate = aggregates[role]
        assert abs(aggregate.patch_rate - 1.0 / 720.0) < 1e-12, role
        assert abs(aggregate.recovery_rate - expected) / expected < 1e-4, role
    print("\n[Table V] aggregated values for the servers")
    print(aggregated_rates_table(aggregates))

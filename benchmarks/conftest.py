"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper and
asserts the reproduced values; ``pytest benchmarks/ --benchmark-only``
prints timing plus the regenerated rows (run with ``-s`` to see them).
"""

from __future__ import annotations

import pytest

from repro.enterprise import (
    example_network_design,
    paper_case_study,
    paper_designs,
)
from repro.evaluation import AvailabilityEvaluator, SweepEngine
from repro.patching import CriticalVulnerabilityPolicy


@pytest.fixture(scope="session")
def case_study():
    return paper_case_study()


@pytest.fixture(scope="session")
def critical_policy():
    return CriticalVulnerabilityPolicy()


@pytest.fixture(scope="session")
def example_design():
    return example_network_design()


@pytest.fixture(scope="session")
def five_designs():
    return paper_designs()


@pytest.fixture(scope="session")
def availability_evaluator(case_study, critical_policy):
    return AvailabilityEvaluator(case_study, critical_policy)


@pytest.fixture(scope="session")
def sweep_engine(case_study, critical_policy):
    """Shared sweep engine; its result cache spans the whole session."""
    return SweepEngine(case_study=case_study, policy=critical_policy)


@pytest.fixture(scope="session")
def design_evaluations(sweep_engine, five_designs):
    return sweep_engine.evaluate(five_designs)

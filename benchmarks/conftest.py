"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper and
asserts the reproduced values; ``pytest benchmarks/ --benchmark-only``
prints timing plus the regenerated rows (run with ``-s`` to see them).
"""

from __future__ import annotations

import pytest

from repro.enterprise import (
    example_network_design,
    paper_case_study,
    paper_designs,
)
from repro.evaluation import AvailabilityEvaluator, evaluate_designs
from repro.patching import CriticalVulnerabilityPolicy


@pytest.fixture(scope="session")
def case_study():
    return paper_case_study()


@pytest.fixture(scope="session")
def critical_policy():
    return CriticalVulnerabilityPolicy()


@pytest.fixture(scope="session")
def example_design():
    return example_network_design()


@pytest.fixture(scope="session")
def five_designs():
    return paper_designs()


@pytest.fixture(scope="session")
def availability_evaluator(case_study, critical_policy):
    return AvailabilityEvaluator(case_study, critical_policy)


@pytest.fixture(scope="session")
def design_evaluations(case_study, critical_policy, five_designs):
    return evaluate_designs(
        five_designs, case_study=case_study, policy=critical_policy
    )

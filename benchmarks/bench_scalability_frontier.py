"""Scalability frontier: transient solves an order of magnitude past the
paper's 2401-state model.

:func:`repro.enterprise.scaled_case_study` generates chain enterprises
whose availability CTMC has ``(hosts + 1) ** tiers`` states; this bench
runs the batched transient COA solve at the paper scale (2401 states),
10,000 states (9 hosts x 4 tiers) and 28,561 states (12 x 4) under each
propagation backend — exact uniformisation, Krylov ``expm_multiply``
propagation and adaptive steady-state-detecting uniformisation — and
emits one BENCH JSON line per (size, method) cell for the CI trajectory
gate.

Acceptance gates asserted here:

* the >= 10,000-state design solves transiently in under 30 s per
  method on one CPU;
* Krylov and adaptive stay within tolerance of the exact sum at every
  size, and ``auto`` dispatch is bit-identical to the default on the
  2401-state paper-scale model.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.enterprise import scaled_case_study
from repro.evaluation import AvailabilityEvaluator
from repro.observability import REGISTRY
from repro.patching import CriticalVulnerabilityPolicy

#: (hosts_per_tier, tiers) -> states = (hosts + 1) ** tiers
SIZES = (
    (6, 4),  # 2401 states — the paper model's scale
    (9, 4),  # 10000 states — the 10x frontier gate
    (12, 4),  # 28561 states
)
METHODS = ("uniformisation", "krylov", "adaptive")
TIMES = [0.0, 24.0, 72.0, 168.0]
FRONTIER_BUDGET_S = 30.0


def _emit(payload):
    print("\nBENCH " + json.dumps(payload))


def _counter_delta(delta, name):
    """Total increment of counter *name* in a registry delta (all labels)."""
    return round(
        sum(
            entry["value"]
            for (family, _labels), entry in delta.items()
            if family == name and entry["kind"] == "counter"
        )
    )


def test_scalability_frontier():
    for hosts, tiers in SIZES:
        build_start = time.perf_counter()
        case_study, design = scaled_case_study(hosts, tiers)
        evaluator = AvailabilityEvaluator(
            case_study, CriticalVulnerabilityPolicy()
        )
        structure, rates = evaluator.coa_structure_for(design)
        build_s = time.perf_counter() - build_start
        states = structure.n_states
        assert states == (hosts + 1) ** tiers

        curves = {}
        for method in METHODS:
            before = REGISTRY.state()
            start = time.perf_counter()
            curves[method] = structure.transient_coa(
                rates, TIMES, method=method
            )
            solve_s = time.perf_counter() - start
            counters = REGISTRY.delta_since(before)
            if states >= 10_000:
                assert solve_s < FRONTIER_BUDGET_S, (
                    f"{method} took {solve_s:.1f}s on {states} states"
                )
            # One unique bench name per (size, method) cell: the CI
            # trajectory diff keys baselines by the name, so sharing one
            # would compare unrelated cells against each other.
            _emit(
                {
                    "bench": f"scalability_frontier_{states}_{method}",
                    "states": states,
                    "hosts_per_tier": hosts,
                    "tiers": tiers,
                    "method": method,
                    "build_s": round(build_s, 4),
                    "solve_s": round(solve_s, 4),
                    # Solver-path counters from the observability
                    # registry (non-_s fields: informational, exempt
                    # from the CI trajectory slowdown gate).
                    "transient_solves": _counter_delta(
                        counters, "repro_transient_solves_total"
                    ),
                    "uniformisation_iterations": _counter_delta(
                        counters,
                        "repro_transient_uniformisation_iterations_total",
                    ),
                    "adaptive_exits": _counter_delta(
                        counters, "repro_transient_adaptive_exits_total"
                    ),
                    "krylov_propagations": _counter_delta(
                        counters, "repro_transient_krylov_propagations_total"
                    ),
                }
            )

        exact = curves["uniformisation"]
        assert exact[0] == 1.0
        np.testing.assert_allclose(curves["krylov"], exact, rtol=0.0, atol=1e-8)
        np.testing.assert_allclose(
            curves["adaptive"], exact, rtol=0.0, atol=1e-8
        )


def test_auto_dispatch_bit_identical_at_paper_scale():
    """``auto`` resolves to the exact path below the cutoff — and the
    2401-state paper-scale model sits below it, so the result must be
    byte for byte the default's."""
    case_study, design = scaled_case_study(6, 4)
    evaluator = AvailabilityEvaluator(case_study, CriticalVulnerabilityPolicy())
    structure, rates = evaluator.coa_structure_for(design)
    assert structure.n_states == 2401
    exact = structure.transient_coa(rates, TIMES)
    auto = structure.transient_coa(rates, TIMES, method="auto")
    assert np.array_equal(auto, exact)
    solver = structure.transient_solver(rates, method="auto")
    assert solver.resolved_method == "uniformisation"

"""Tentpole bench: the structure-sharing sweep pipeline.

Process-executor sweeps used to re-pickle the case study per chunk and
re-solve every lower-layer SRN in every chunk, and every design's
availability SRN was explored from scratch even when dozens of designs
share one transition pattern.  The structure-sharing pipeline solves the
per-role aggregate table and one canonical structure per pattern once,
publishes the numeric arrays to pool workers over
``multiprocessing.shared_memory``, and pattern-groups the upper-layer
solves — results byte-identical to the naive path.

Three assertions on the paper's 27-design sweep (dns/web/app x 1..3):

* **speedup** — the shared process-executor sweep is >= 5x faster than
  the per-chunk re-solving baseline (``structure_sharing=False``),
  measured as min-over-trials on reused engines (result memo cleared
  each trial, so the parent's one-time precompute amortises exactly as
  it does across repeated CLI/cached sweeps);
* **solve-count reduction** — 27 designs collapse to 10 distinct
  transition patterns: the shared pipeline runs 10 upper-layer
  reachability explorations instead of 27;
* **byte-identity** — sweep and timeline results with sharing on equal
  the sharing-off baseline bit for bit, across serial, thread and
  process executors.
"""

from __future__ import annotations

import json
import time

from repro.evaluation.engine import SweepEngine
from repro.evaluation.sweep import enumerate_designs
from repro.availability.grouped import design_layout
from repro.observability import REGISTRY
from repro.srn.reachability import exploration_count

ROLES = ("dns", "web", "app")
MAX_REPLICAS = 3
TRIALS = 5

#: Reduced grid for the <60s CI smoke (identity + solve counts only).
SMOKE_ROLES = ("dns", "web")
SMOKE_REPLICAS = 2


def _space():
    return list(enumerate_designs(ROLES, max_replicas=MAX_REPLICAS))


def _assert_identical(reference, results):
    assert len(reference) == len(results)
    for a, b in zip(reference, results):
        assert a.design == b.design
        assert a.before == b.before
        assert a.after == b.after
        assert a.after.coa.hex() == b.after.coa.hex()


def test_structure_sharing_speedup(case_study, critical_policy):
    """Shared process sweep >= 5x the per-chunk re-solving baseline."""
    designs = _space()
    assert len(designs) == 27  # the acceptance space

    patterns = {design_layout(design)[0] for design in designs}
    assert len(patterns) < len(designs)
    assert len(patterns) == 10

    def engine(**kwargs):
        return SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
            chunk_size=1,
            **kwargs,
        )

    def timed(sweep_engine):
        best, results = float("inf"), None
        for _ in range(TRIALS):
            sweep_engine.clear_cache()
            start = time.perf_counter()
            results = sweep_engine.evaluate(designs)
            best = min(best, time.perf_counter() - start)
        return best, results

    shared_engine = engine()
    baseline_engine = engine(structure_sharing=False)
    baseline_s, baseline_results = timed(baseline_engine)
    shared_s, shared_results = timed(shared_engine)

    # byte-identity before anything else: speed means nothing otherwise
    _assert_identical(baseline_results, shared_results)

    # solve counts, measured in-process on serial engines
    def solve_counts(structure_sharing):
        serial = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            structure_sharing=structure_sharing,
        )
        steady = REGISTRY.counter("repro_steady_solves_total")
        steady_before = sum(c.value for c in steady.series().values())
        before = exploration_count()
        serial.evaluate(designs)
        steady_after = sum(c.value for c in steady.series().values())
        return exploration_count() - before, round(
            steady_after - steady_before
        )

    lower_layer = len(ROLES)  # one server SRN per role, in both modes
    shared_explorations, shared_steady = solve_counts(True)
    baseline_explorations, baseline_steady = solve_counts(False)
    assert shared_explorations == len(patterns) + lower_layer
    assert baseline_explorations == len(designs) + lower_layer

    speedup = baseline_s / shared_s
    print(
        "\nBENCH "
        + json.dumps(
            {
                "bench": "structure_sharing_sweep",
                "designs": len(designs),
                "patterns": len(patterns),
                "baseline_s": round(baseline_s, 4),
                "shared_s": round(shared_s, 4),
                "speedup": round(speedup, 1),
                "upper_explorations_shared": shared_explorations - lower_layer,
                "upper_explorations_baseline": (
                    baseline_explorations - lower_layer
                ),
                "steady_solves_shared": shared_steady,
                "steady_solves_baseline": baseline_steady,
            }
        )
    )
    assert speedup >= 5.0, f"structure sharing only {speedup:.1f}x faster"


def test_sweep_identity_across_executors(case_study, critical_policy):
    """Sharing on == off, byte for byte, on every executor (reduced grid)."""
    designs = list(
        enumerate_designs(SMOKE_ROLES, max_replicas=SMOKE_REPLICAS)
    )
    reference = SweepEngine(
        case_study=case_study,
        policy=critical_policy,
        structure_sharing=False,
    ).evaluate(designs)
    for executor in ("serial", "thread", "process"):
        for sharing in (True, False):
            kwargs = (
                {}
                if executor == "serial"
                else {"max_workers": 2, "chunk_size": 1}
            )
            results = SweepEngine(
                case_study=case_study,
                policy=critical_policy,
                executor=executor,
                structure_sharing=sharing,
                **kwargs,
            ).evaluate(designs)
            _assert_identical(reference, results)


def test_timeline_identity_across_executors(case_study, critical_policy):
    """Timeline parity: sharing on == off across executors (reduced grid)."""
    designs = list(
        enumerate_designs(SMOKE_ROLES, max_replicas=SMOKE_REPLICAS)
    )
    times = tuple(float(t) for t in (0.0, 90.0, 360.0, 720.0))
    reference = SweepEngine(
        case_study=case_study,
        policy=critical_policy,
        structure_sharing=False,
    ).timeline(designs, times)
    for executor in ("serial", "thread", "process"):
        for sharing in (True, False):
            kwargs = (
                {}
                if executor == "serial"
                else {"max_workers": 2, "chunk_size": 1}
            )
            results = SweepEngine(
                case_study=case_study,
                policy=critical_policy,
                executor=executor,
                structure_sharing=sharing,
                **kwargs,
            ).timeline(designs, times)
            for a, b in zip(reference, results):
                assert a.coa == b.coa
                assert a.completion_probability == b.completion_probability
                assert a.unpatched_fraction == b.unpatched_fraction
                assert a.mean_time_to_completion == b.mean_time_to_completion
                assert a.before == b.before
                assert a.after == b.after


def test_smoke_solve_count_reduction(case_study, critical_policy):
    """CI smoke: the reduced grid still shares structures (4 designs,
    3 patterns) and never exceeds the baseline exploration count."""
    designs = list(
        enumerate_designs(SMOKE_ROLES, max_replicas=SMOKE_REPLICAS)
    )
    patterns = {design_layout(design)[0] for design in designs}
    assert len(patterns) < len(designs)

    before = exploration_count()
    SweepEngine(case_study=case_study, policy=critical_policy).evaluate(
        designs
    )
    shared = exploration_count() - before

    before = exploration_count()
    SweepEngine(
        case_study=case_study,
        policy=critical_policy,
        structure_sharing=False,
    ).evaluate(designs)
    baseline = exploration_count() - before

    lower_layer = len(SMOKE_ROLES)
    assert shared == len(patterns) + lower_layer
    assert baseline == len(designs) + lower_layer
    print(
        "\nBENCH "
        + json.dumps(
            {
                "bench": "structure_sharing_smoke",
                "designs": len(designs),
                "patterns": len(patterns),
                "upper_explorations_shared": shared - lower_layer,
                "upper_explorations_baseline": baseline - lower_layer,
            }
        )
    )

"""Table I: recompute the vulnerability metrics from CVSS vectors.

Regenerates the (attack impact, attack success probability) columns for
every exploitable vulnerability and checks them against the published
table.
"""

from __future__ import annotations

from repro.evaluation.report import vulnerability_table
from repro.vulnerability import paper_database

TABLE_I = {
    "CVE-2016-3227": (10.0, 1.0),
    "CVE-2016-4448": (10.0, 1.0),
    "CVE-2015-4602": (10.0, 1.0),
    "CVE-2015-4603": (10.0, 1.0),
    "CVE-2016-4979": (2.9, 1.0),
    "CVE-2016-4805": (10.0, 0.39),
    "CVE-2016-3586": (10.0, 1.0),
    "CVE-2016-3510": (10.0, 1.0),
    "CVE-2016-3499": (10.0, 1.0),
    "CVE-2016-0638": (6.4, 1.0),
    "CVE-2016-4997": (10.0, 0.39),
    "CVE-2016-6662": (10.0, 1.0),
    "CVE-2016-0639": (10.0, 1.0),
    "CVE-2015-3152": (2.9, 0.86),
    "CVE-2016-3471": (10.0, 0.39),
}


def _recompute():
    db = paper_database()
    return {
        record.cve_id: (
            record.attack_impact,
            record.attack_success_probability,
        )
        for record in db.exploitable()
    }


def test_table1_catalog(benchmark, case_study):
    computed = benchmark(_recompute)
    for cve_id, expected in TABLE_I.items():
        impact, probability = computed[cve_id]
        assert impact == expected[0], cve_id
        assert abs(probability - expected[1]) < 1e-9, cve_id
    print("\n[Table I] vulnerability information of the example network")
    print(vulnerability_table(case_study))

"""Table IV: the DNS server's lower-layer SRN.

Builds the hardware/OS/service/patch-clock SRN from the Table IV rates,
solves it, and checks the steady-state patch probabilities the paper
reports in its Eq. (2) worked example (p_pd ~ 0.00092506 and
p_prrb ~ 0.00011563).
"""

from __future__ import annotations

from repro.availability import compute_measures, dns_server_parameters
from repro.availability.server import build_server_srn, solve_server


def _solve_dns():
    return solve_server(dns_server_parameters())


def test_table4_dns_server_srn(benchmark):
    solution = benchmark(_solve_dns)
    measures = compute_measures(solution)

    assert abs(measures.patch_down - 0.00092506) / 0.00092506 < 3e-3
    assert abs(measures.patch_ready_to_reboot - 0.00011563) / 0.00011563 < 3e-3
    assert measures.service_up > 0.99

    net = build_server_srn(dns_server_parameters())
    print("\n[Table IV] DNS server SRN")
    print(f"  places: {len(net.places)}, transitions: {len(net.transitions)}")
    print(f"  tangible markings: {solution.graph.number_of_states}")
    print(f"  vanishing markings eliminated: {solution.graph.vanishing_count}")
    print(f"  p(service up)      = {measures.service_up:.8f}")
    print(f"  p(patch down)      = {measures.patch_down:.8f}  (paper 0.00092506)")
    print(
        f"  p(ready to reboot) = {measures.patch_ready_to_reboot:.8f}"
        "  (paper 0.00011563)"
    )

"""Extension: heterogeneous redundancy (paper Section V future work).

Compares the dual-Apache web tier (the paper's third design) with an
Apache + nginx diverse tier through the unified ``DesignSpec``
pipeline — the same :class:`SweepEngine` path homogeneous designs take:
identical COA-level benefit, but the attacker needs distinct exploits
per stack (unique-CVE count rises).
"""

from __future__ import annotations

from repro.enterprise import HeterogeneousDesign, paper_variants
from repro.evaluation import SweepEngine
from repro.vulnerability.diversity import diversity_database


def _compare(case_study, critical_policy):
    variants = paper_variants()
    base = {
        "dns": {variants["dns_ms"]: 1},
        "app": {variants["app_weblogic"]: 1},
        "db": {variants["db_mysql"]: 1},
    }
    uniform = HeterogeneousDesign(
        {**base, "web": {variants["web_apache"]: 2}}
    )
    diverse = HeterogeneousDesign(
        {**base, "web": {variants["web_apache"]: 1, variants["web_nginx"]: 1}}
    )
    engine = SweepEngine(
        case_study=case_study,
        policy=critical_policy,
        database=diversity_database(),
    )
    evaluations = engine.evaluate([uniform, diverse])
    return {
        label: (evaluation.after.security, evaluation.after.coa)
        for label, evaluation in zip(("uniform", "diverse"), evaluations)
    }


def test_extension_heterogeneous(benchmark, case_study, critical_policy):
    results = benchmark(_compare, case_study, critical_policy)
    uniform_metrics, uniform_coa = results["uniform"]
    diverse_metrics, diverse_coa = results["diverse"]

    assert diverse_metrics.unique_cve_count > uniform_metrics.unique_cve_count
    assert (
        diverse_metrics.number_of_attack_paths
        == uniform_metrics.number_of_attack_paths
    )
    assert abs(diverse_coa - uniform_coa) < 5e-4

    print("\n[extension] dual Apache vs Apache+nginx (after patch)")
    for label, (metrics, coa) in results.items():
        print(
            f"  {label:<8} ASP={metrics.attack_success_probability:.4f}"
            f" NoEV={metrics.number_of_exploitable_vulnerabilities}"
            f" uniqueCVE={metrics.unique_cve_count}"
            f" COA={coa:.6f}"
        )

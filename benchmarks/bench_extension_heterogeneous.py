"""Extension: heterogeneous redundancy (paper Section V future work).

Compares the dual-Apache web tier (the paper's third design) with an
Apache + nginx diverse tier: identical COA-level benefit, but the
attacker needs distinct exploits per stack (unique-CVE count rises).
"""

from __future__ import annotations

from repro.enterprise import (
    HeterogeneousDesign,
    build_heterogeneous_harm,
    heterogeneous_availability_model,
    paper_variants,
)
from repro.harm import evaluate_security
from repro.vulnerability.diversity import diversity_database


def _compare(case_study, critical_policy):
    variants = paper_variants()
    database = diversity_database()
    base = {
        "dns": {variants["dns_ms"]: 1},
        "app": {variants["app_weblogic"]: 1},
        "db": {variants["db_mysql"]: 1},
    }
    uniform = HeterogeneousDesign(
        {**base, "web": {variants["web_apache"]: 2}}
    )
    diverse = HeterogeneousDesign(
        {**base, "web": {variants["web_apache"]: 1, variants["web_nginx"]: 1}}
    )
    results = {}
    for label, design in (("uniform", uniform), ("diverse", diverse)):
        harm = build_heterogeneous_harm(case_study, design, database, critical_policy)
        metrics = evaluate_security(harm)
        model = heterogeneous_availability_model(
            case_study, design, database, critical_policy
        )
        results[label] = (metrics, model.capacity_oriented_availability())
    return results


def test_extension_heterogeneous(benchmark, case_study, critical_policy):
    results = benchmark(_compare, case_study, critical_policy)
    uniform_metrics, uniform_coa = results["uniform"]
    diverse_metrics, diverse_coa = results["diverse"]

    assert diverse_metrics.unique_cve_count > uniform_metrics.unique_cve_count
    assert (
        diverse_metrics.number_of_attack_paths
        == uniform_metrics.number_of_attack_paths
    )
    assert abs(diverse_coa - uniform_coa) < 5e-4

    print("\n[extension] dual Apache vs Apache+nginx (after patch)")
    for label, (metrics, coa) in results.items():
        print(
            f"  {label:<8} ASP={metrics.attack_success_probability:.4f}"
            f" NoEV={metrics.number_of_exploitable_vulnerabilities}"
            f" uniqueCVE={metrics.unique_cve_count}"
            f" COA={coa:.6f}"
        )

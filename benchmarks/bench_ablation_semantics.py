"""Ablation: HARM evaluation semantics (DESIGN.md design-choice study).

Compares the network-level ASP under the two path aggregations and the
two OR-gate semantics.  The design-selection outcome of Fig. 6 region 1
must be insensitive to the gate semantics but *does* depend on the path
aggregation — the worst-case aggregation collapses designs 1-5 onto two
ASP values, which is exactly why DESIGN.md adopts independent paths.
"""

from __future__ import annotations

from repro.attacktree import PROBABILISTIC, WORST_CASE
from repro.harm import PathAggregation, evaluate_security


def _sweep_semantics(case_study, five_designs, critical_policy):
    table = {}
    for design in five_designs:
        harm = case_study.build_harm(design, critical_policy)
        row = {}
        for aggregation in PathAggregation:
            for semantics in (WORST_CASE, PROBABILISTIC):
                metrics = evaluate_security(
                    harm, semantics=semantics, aggregation=aggregation
                )
                row[(aggregation.value, semantics.name)] = (
                    metrics.attack_success_probability
                )
        table[design.label] = row
    return table


def test_ablation_semantics(benchmark, case_study, five_designs, critical_policy):
    table = benchmark(_sweep_semantics, case_study, five_designs, critical_policy)

    d1 = table["1 DNS + 1 WEB + 1 APP + 1 DB"]
    d4 = table["1 DNS + 1 WEB + 2 APP + 1 DB"]
    # worst-case aggregation cannot separate D1 from D4
    assert abs(
        d1[("worst_case", "worst_case")] - d4[("worst_case", "worst_case")]
    ) < 1e-12
    # independent paths can (the paper's qualitative ordering)
    assert (
        d4[("independent_paths", "worst_case")]
        > d1[("independent_paths", "worst_case")]
    )
    # probabilistic OR raises ASP (db tree has a real OR after patch)
    assert (
        d1[("independent_paths", "probabilistic")]
        >= d1[("independent_paths", "worst_case")]
    )

    print("\n[ablation] ASP after patch under different semantics")
    header = "design".ljust(30) + "wc/wc      ip/wc      ip/prob"
    print("  " + header)
    for label, row in table.items():
        print(
            f"  {label:<30}"
            f"{row[('worst_case', 'worst_case')]:.4f}     "
            f"{row[('independent_paths', 'worst_case')]:.4f}     "
            f"{row[('independent_paths', 'probabilistic')]:.4f}"
        )

"""Figure 6: ASP vs COA scatter for the five designs, plus Eq. (3) regions.

Paper results: before patch every design sits at ASP = 1.0; after patch
region 1 (phi=0.2, psi=0.9962) selects designs 4 and 5, region 2
(phi=0.1, psi=0.9961) selects design 2.
"""

from __future__ import annotations

from repro.evaluation import evaluate_designs
from repro.evaluation.charts import render_scatter, scatter_data
from repro.evaluation.requirements import (
    PAPER_REGION_1_TWO_METRIC,
    PAPER_REGION_2_TWO_METRIC,
    satisfying_designs,
)


def _evaluate_five(case_study, critical_policy, five_designs):
    return evaluate_designs(
        five_designs, case_study=case_study, policy=critical_policy
    )


def test_fig6_scatter(benchmark, case_study, critical_policy, five_designs):
    evaluations = benchmark(
        _evaluate_five, case_study, critical_policy, five_designs
    )

    before = scatter_data(evaluations, after_patch=False)
    assert all(point.asp == 1.0 for point in before)

    region1 = satisfying_designs(evaluations, PAPER_REGION_1_TWO_METRIC)
    region2 = satisfying_designs(evaluations, PAPER_REGION_2_TWO_METRIC)
    assert [e.label for e in region1] == [
        "1 DNS + 1 WEB + 2 APP + 1 DB",
        "1 DNS + 1 WEB + 1 APP + 2 DB",
    ]
    assert [e.label for e in region2] == ["2 DNS + 1 WEB + 1 APP + 1 DB"]

    print("\n[Fig. 6b] ASP vs COA after patch")
    print(render_scatter(scatter_data(evaluations, after_patch=True)))
    print(f"  region 1 (phi=0.2, psi=0.9962): {[e.label for e in region1]}")
    print(f"  region 2 (phi=0.1, psi=0.9961): {[e.label for e in region2]}")

"""Table II: security metrics of the example network before/after patch.

Paper row:  AIM 52.2 -> 42.2, ASP 1.0 -> 0.265*, NoEV 25* -> 11,
NoAP 8 -> 4, NoEP 3 -> 2.  (* documented deviations: NoEV before is 26 —
the after-patch value confirms per-instance counting, 25 is a slip —
and the after-patch ASP is 0.217 under the independent-paths
aggregation; see EXPERIMENTS.md.)
"""

from __future__ import annotations

from repro.evaluation.report import security_metrics_table
from repro.harm import evaluate_security


def _full_security_pipeline(case_study, example_design, critical_policy):
    before = evaluate_security(case_study.build_harm(example_design))
    after = evaluate_security(
        case_study.build_harm(example_design, critical_policy)
    )
    return before, after


def test_table2_security_metrics(
    benchmark, case_study, example_design, critical_policy
):
    before, after = benchmark(
        _full_security_pipeline, case_study, example_design, critical_policy
    )

    assert before.attack_impact == 52.2 or abs(before.attack_impact - 52.2) < 1e-9
    assert before.attack_success_probability == 1.0
    assert before.number_of_exploitable_vulnerabilities == 26  # paper: 25
    assert before.number_of_attack_paths == 8
    assert before.number_of_entry_points == 3

    assert abs(after.attack_impact - 42.2) < 1e-9
    assert abs(after.attack_success_probability - 0.217) < 5e-4  # paper: 0.265
    assert after.number_of_exploitable_vulnerabilities == 11
    assert after.number_of_attack_paths == 4
    assert after.number_of_entry_points == 2

    print("\n[Table II] security metrics for the example network")
    print(security_metrics_table(before, after))

"""Extension: one-at-a-time COA sensitivity (tornado data).

Ranks the availability levers: the patch cadence dominates, patch and
reboot durations follow, and component failure rates are invisible to
COA because the upper-layer model captures patch downtime only.
"""

from __future__ import annotations

from repro.evaluation import coa_sensitivity


def _tornado(case_study, example_design, critical_policy):
    return coa_sensitivity(case_study, example_design, critical_policy)


def test_extension_sensitivity(
    benchmark, case_study, example_design, critical_policy
):
    entries = benchmark(_tornado, case_study, example_design, critical_policy)

    assert entries[0].parameter == "patch_interval"
    swings = [entry.swing for entry in entries]
    assert swings == sorted(swings, reverse=True)

    print("\n[extension] COA tornado (x0.5 / x2.0 scans), example network")
    for entry in entries:
        print(
            f"  {entry.parameter:<24} swing={entry.swing:.6f}"
            f"  low={entry.coa_low:.6f} high={entry.coa_high:.6f}"
        )

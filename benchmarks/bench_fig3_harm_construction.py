"""Figure 3: construction of the two-layered HARMs before/after patch.

Benchmarks the security-model-generator phase (host expansion, tree
construction, pruning) and checks the structural facts the figure shows:
entry points, the DNS tier dropping off after patch, and the tree shapes.
"""

from __future__ import annotations


def _build_both(case_study, example_design, critical_policy):
    before = case_study.build_harm(example_design)
    after = case_study.build_harm(example_design, critical_policy)
    return before, after


def test_fig3_harm_construction(
    benchmark, case_study, example_design, critical_policy
):
    before, after = benchmark(
        _build_both, case_study, example_design, critical_policy
    )

    before_surface = before.attack_surface()
    after_surface = after.attack_surface()
    assert before_surface.entry_points() == ["dns1", "web1", "web2"]
    assert after_surface.entry_points() == ["web1", "web2"]
    assert before_surface.number_of_attack_paths() == 8
    assert after_surface.number_of_attack_paths() == 4
    assert "dns1" not in after.trees

    print("\n[Fig. 3] HARMs of the example network")
    print("  before patch:")
    for host in before.exploitable_hosts():
        print(f"    {host}: {before.tree_for(host).to_expression()}")
    print("  after patch:")
    for host in after.exploitable_hosts():
        print(f"    {host}: {after.tree_for(host).to_expression()}")

"""Ablation: the paper's failure-during-patch assumptions.

Table III's guards allow hardware failure during patch states while the
prose assumes it away; this bench quantifies how little the choice
matters (it perturbs the Table V recovery rates in the 4th decimal),
justifying treating the two readings as equivalent.
"""

from __future__ import annotations

from repro.availability import aggregate_service, paper_server_parameters


def _aggregate_variants():
    params = paper_server_parameters()["dns"]
    return {
        "table-iii guards": aggregate_service(params),
        "no hw failure in patch": aggregate_service(
            params, hardware_can_fail_during_patch=False
        ),
        "no sw failure in patch": aggregate_service(
            params, software_can_fail_during_patch=False
        ),
        "strict prose": aggregate_service(
            params,
            hardware_can_fail_during_patch=False,
            software_can_fail_during_patch=False,
        ),
    }


def test_ablation_assumptions(benchmark):
    variants = benchmark(_aggregate_variants)

    baseline = variants["table-iii guards"].recovery_rate
    for label, aggregate in variants.items():
        assert abs(aggregate.recovery_rate - baseline) / baseline < 1e-3, label
        assert abs(aggregate.recovery_rate - 1.5) < 2e-3, label

    print("\n[ablation] DNS recovery rate under assumption variants")
    for label, aggregate in variants.items():
        print(
            f"  {label:<26} mu_eq = {aggregate.recovery_rate:.6f}"
            f"  (availability {aggregate.measures.availability:.6f})"
        )

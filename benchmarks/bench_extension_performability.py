"""Extension (paper Section V, "user oriented performance"): queueing.

Availability-weighted M/M/c response times per design: redundancy both
raises COA and cuts the response time, quantifying the paper's
future-work sketch.
"""

from __future__ import annotations

from repro.performance import expected_response_time


def _response_times(availability_evaluator, five_designs):
    results = {}
    for design in five_designs:
        model = availability_evaluator.network_model(design)
        result = expected_response_time(
            model, "web", arrival_rate=40.0, service_rate=60.0
        )
        results[design.label] = result
    return results


def test_extension_performability(benchmark, availability_evaluator, five_designs):
    results = benchmark(_response_times, availability_evaluator, five_designs)

    single_web = results["1 DNS + 1 WEB + 1 APP + 1 DB"]
    double_web = results["1 DNS + 2 WEB + 1 APP + 1 DB"]
    assert double_web.mean_response_time < single_web.mean_response_time
    assert double_web.outage_probability <= single_web.outage_probability

    print("\n[extension] web-tier mean response time (lambda=40/h, mu=60/h)")
    for label, result in results.items():
        print(
            f"  {label:<30} E[T] = {result.mean_response_time*60:7.3f} min"
            f"   P(outage) = {result.outage_probability:.2e}"
        )

"""Extension: mean time to compromise (attacker-progression CTMC).

MTTC adds a time dimension to the static HARM metrics: patching slows
the attacker (ASP drops, exploits take longer to land); extra replicas
of exploitable tiers speed the attacker up (parallel targets race);
extra replicas of the patched DNS tier change nothing.
"""

from __future__ import annotations

from functools import partial

from repro.harm import mean_time_to_compromise


def _design_mttc(case_study, critical_policy, design):
    """Per-design MTTC pair; module-level so the engine can fan it out."""
    before = mean_time_to_compromise(case_study.build_harm(design))
    after = mean_time_to_compromise(
        case_study.build_harm(design, critical_policy)
    )
    return design.label, (before, after)


def _mttc_per_design(sweep_engine, case_study, five_designs, critical_policy):
    pairs = sweep_engine.map(
        partial(_design_mttc, case_study, critical_policy), five_designs
    )
    return dict(pairs)


def test_extension_mttc(
    benchmark, sweep_engine, case_study, five_designs, critical_policy
):
    results = benchmark(
        _mttc_per_design, sweep_engine, case_study, five_designs, critical_policy
    )

    for label, (before, after) in results.items():
        assert after > before, label
    d1_after = results["1 DNS + 1 WEB + 1 APP + 1 DB"][1]
    d2_after = results["2 DNS + 1 WEB + 1 APP + 1 DB"][1]
    d3_after = results["1 DNS + 2 WEB + 1 APP + 1 DB"][1]
    assert d2_after == d1_after  # DNS replicas off the surface after patch
    assert d3_after < d1_after  # extra web replica races the attacker in

    print("\n[extension] mean time to compromise (unit exploit rate)")
    print("  design                          before     after")
    for label, (before, after) in results.items():
        print(f"  {label:<30} {before:8.3f}  {after:8.3f}")

"""Scalability: HARM construction and path enumeration vs replica count.

Path count grows as the product of tier widths (plus the DNS entry
variants); this bench pins the combinatorial formula and times the
enumeration, mirroring the HARM scalability argument of Hong & Kim that
the paper builds on.
"""

from __future__ import annotations

from repro.enterprise import RedundancyDesign
from repro.harm import evaluate_security


def _paths_for_width(case_study, width):
    design = RedundancyDesign(
        {"dns": width, "web": width, "app": width, "db": width}
    )
    harm = case_study.build_harm(design)
    metrics = evaluate_security(harm)
    return metrics.number_of_attack_paths


def expected_paths(width):
    """(dns entries x web + direct web) x app x db paths."""
    return (width * width + width) * width * width


def test_scalability_harm_width_2(benchmark, case_study):
    paths = benchmark(_paths_for_width, case_study, 2)
    assert paths == expected_paths(2)
    print(f"\n[scalability] width 2: {paths} attack paths")


def test_scalability_harm_width_3(benchmark, case_study):
    paths = benchmark(_paths_for_width, case_study, 3)
    assert paths == expected_paths(3)
    print(f"\n[scalability] width 3: {paths} attack paths")


def test_scalability_path_formula(case_study):
    for width in (1, 2, 3, 4):
        assert _paths_for_width(case_study, width) == expected_paths(width)

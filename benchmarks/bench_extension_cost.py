"""Extension (paper Section V, "other metrics"): operational cost.

Scores the five designs with the documented cost model; the trade-off
the paper describes in prose (hardware cost vs downtime and breach risk)
becomes a single comparable number per design.
"""

from __future__ import annotations

from repro.evaluation.cost import CostModel


def _cost_all(design_evaluations):
    model = CostModel()
    return {
        evaluation.label: model.breakdown(evaluation, patched_vulnerabilities=9)
        for evaluation in design_evaluations
    }


def test_extension_cost(benchmark, design_evaluations):
    breakdowns = benchmark(_cost_all, design_evaluations)

    d1 = breakdowns["1 DNS + 1 WEB + 1 APP + 1 DB"]
    d4 = breakdowns["1 DNS + 1 WEB + 2 APP + 1 DB"]
    assert d4.servers > d1.servers
    assert d4.downtime < d1.downtime

    print("\n[extension] monthly cost breakdown per design")
    print("  design                          servers  downtime  breach   total")
    for label, b in breakdowns.items():
        print(
            f"  {label:<30}  {b.servers:7.0f}  {b.downtime:8.0f}"
            f"  {b.breach_risk:7.0f}  {b.total:7.0f}"
        )

"""Ablation (paper Section V, "patch schedule"): cadence sweep.

Compares weekly / biweekly / monthly / quarterly patching on the example
network.  Faster cadences lower COA (more patch downtime) but shrink the
exposure window during which known-critical vulnerabilities sit
unpatched; this bench regenerates that trade-off curve.
"""

from __future__ import annotations

from repro.enterprise import paper_case_study
from repro.evaluation import AvailabilityEvaluator
from repro.patching import (
    BIWEEKLY,
    CriticalVulnerabilityPolicy,
    MONTHLY,
    QUARTERLY,
    WEEKLY,
)

SCHEDULES = (WEEKLY, BIWEEKLY, MONTHLY, QUARTERLY)


def _sweep_schedules(example_design):
    policy = CriticalVulnerabilityPolicy()
    results = {}
    for schedule in SCHEDULES:
        case_study = paper_case_study(schedule=schedule)
        evaluator = AvailabilityEvaluator(case_study, policy)
        coa = evaluator.coa(example_design)
        # mean exposure: half the patch interval, in days
        exposure_days = schedule.interval_days / 2.0
        results[schedule.label] = (coa, exposure_days)
    return results


def test_ablation_patch_schedules(benchmark, example_design):
    results = benchmark(_sweep_schedules, example_design)

    coas = [results[s.label][0] for s in SCHEDULES]
    exposures = [results[s.label][1] for s in SCHEDULES]
    # slower cadence -> higher COA, longer exposure
    assert coas == sorted(coas)
    assert exposures == sorted(exposures)
    assert results["monthly"][0] - 0.99707 < 5e-6

    print("\n[ablation] patch-schedule sweep (example network)")
    print("  schedule    COA        mean exposure (days)")
    for schedule in SCHEDULES:
        coa, exposure = results[schedule.label]
        print(f"  {schedule.label:<10}  {coa:.6f}   {exposure:5.1f}")

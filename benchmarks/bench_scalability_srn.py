"""Scalability: upper-layer SRN state space and solve time vs replicas.

The paper's Section V plans larger networks; this bench grows every tier
to n replicas and measures the exact-solution pipeline.  State count is
(n+1)^4, so n=6 already means 2401 tangible states — comfortably solved
by the sparse pipeline.
"""

from __future__ import annotations

from repro.availability import NetworkAvailabilityModel


def _solve_uniform_design(aggregates, replicas):
    counts = {role: replicas for role in ("dns", "web", "app", "db")}
    model = NetworkAvailabilityModel(counts, aggregates)
    coa = model.capacity_oriented_availability()
    return model.solve().graph.number_of_states, coa


def test_scalability_srn_replicas_4(
    benchmark, availability_evaluator, example_design
):
    aggregates = availability_evaluator.aggregates_for(example_design)
    states, coa = benchmark(_solve_uniform_design, aggregates, 4)
    assert states == 5**4
    assert 0.998 < coa < 1.0
    print(f"\n[scalability] n=4 replicas/tier: {states} states, COA={coa:.8f}")


def test_scalability_srn_replicas_6(
    benchmark, availability_evaluator, example_design
):
    aggregates = availability_evaluator.aggregates_for(example_design)
    states, coa = benchmark(_solve_uniform_design, aggregates, 6)
    assert states == 7**4
    assert 0.998 < coa < 1.0
    print(f"\n[scalability] n=6 replicas/tier: {states} states, COA={coa:.8f}")


def test_scalability_coa_monotone_in_replicas(
    availability_evaluator, example_design
):
    aggregates = availability_evaluator.aggregates_for(example_design)
    coas = [
        _solve_uniform_design(aggregates, replicas)[1] for replicas in (1, 2, 3, 4)
    ]
    assert coas == sorted(coas)

"""Scalability: upper-layer SRN state space, solve time and reward paths.

The paper's Section V plans larger networks; this bench grows every tier
to n replicas and measures the exact-solution pipeline.  State count is
(n+1)^4, so n=6 already means 2401 tangible states — comfortably solved
by the sparse pipeline.

Two engine-era measurements ride along:

* ``test_reward_vectorized_speedup`` times the vectorized reward path
  (cached per-marking vector + numpy dot) against the original
  per-marking Python loop on the 2401-state model and asserts the
  >= 3x speedup the sweep engine relies on (measured ~10-100x).
* ``test_sweep_engine_design_space`` sweeps a 64-design space through
  :class:`repro.evaluation.engine.SweepEngine` — the batched path that
  replaced the serial per-design loop.
"""

from __future__ import annotations

import time

from repro.availability import NetworkAvailabilityModel
from repro.availability.coa import coa_reward
from repro.evaluation import SweepEngine, enumerate_designs


def _solve_uniform_design(aggregates, replicas):
    counts = {role: replicas for role in ("dns", "web", "app", "db")}
    model = NetworkAvailabilityModel(counts, aggregates)
    coa = model.capacity_oriented_availability()
    return model.solve().graph.number_of_states, coa


def test_scalability_srn_replicas_4(
    benchmark, availability_evaluator, example_design
):
    aggregates = availability_evaluator.aggregates_for(example_design)
    states, coa = benchmark(_solve_uniform_design, aggregates, 4)
    assert states == 5**4
    assert 0.998 < coa < 1.0
    print(f"\n[scalability] n=4 replicas/tier: {states} states, COA={coa:.8f}")


def test_scalability_srn_replicas_6(
    benchmark, availability_evaluator, example_design
):
    aggregates = availability_evaluator.aggregates_for(example_design)
    states, coa = benchmark(_solve_uniform_design, aggregates, 6)
    assert states == 7**4
    assert 0.998 < coa < 1.0
    print(f"\n[scalability] n=6 replicas/tier: {states} states, COA={coa:.8f}")


def test_scalability_coa_monotone_in_replicas(
    availability_evaluator, example_design
):
    aggregates = availability_evaluator.aggregates_for(example_design)
    coas = [
        _solve_uniform_design(aggregates, replicas)[1] for replicas in (1, 2, 3, 4)
    ]
    assert coas == sorted(coas)


def test_reward_vectorized_speedup(availability_evaluator, example_design):
    """Vectorized reward path must beat the loop path >= 3x (acceptance)."""
    aggregates = availability_evaluator.aggregates_for(example_design)
    counts = {role: 6 for role in ("dns", "web", "app", "db")}
    model = NetworkAvailabilityModel(counts, aggregates)
    solution = model.solve()
    reward = coa_reward(counts)
    repetitions = 25
    trials = 3

    def _timed(fn):
        # Min over trials: robust to scheduler preemption on shared CI.
        best, values = float("inf"), None
        for _ in range(trials):
            start = time.perf_counter()
            values = [fn(reward) for _ in range(repetitions)]
            best = min(best, time.perf_counter() - start)
        return best, values

    loop_time, loop_values = _timed(solution.expected_reward_loop)
    vec_time, vec_values = _timed(solution.expected_reward)

    assert abs(loop_values[0] - vec_values[0]) < 1e-12
    speedup = loop_time / vec_time
    print(
        f"\n[scalability] reward path over {len(solution.markings)} states, "
        f"{repetitions} evaluations: loop {loop_time * 1e3:.1f} ms, "
        f"vectorized {vec_time * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 3.0, f"vectorized reward only {speedup:.2f}x faster"


def test_sweep_engine_design_space(benchmark, case_study, critical_policy):
    """64-design sweep through the engine (the Figs. 6-7 scale-up path)."""
    designs = list(enumerate_designs(["dns", "web", "app"], max_replicas=4))
    assert len(designs) == 64

    def _sweep():
        engine = SweepEngine(case_study=case_study, policy=critical_policy)
        return engine.evaluate(designs)

    evaluations = benchmark(_sweep)
    assert len(evaluations) == 64
    front = SweepEngine(
        case_study=case_study, policy=critical_policy
    ).pareto(evaluations)
    assert 0 < len(front) <= 64
    print(
        f"\n[scalability] engine sweep: {len(evaluations)} designs, "
        f"Pareto front size {len(front)}"
    )

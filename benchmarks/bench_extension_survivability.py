"""Extension: survivability (time to first patch-induced outage).

The single-replica DNS and DB tiers race to their monthly patch window,
so the example network's expected time to first whole-tier outage is
close to 720/2 = 360 hours; full 2x redundancy pushes it past 5 years.
"""

from __future__ import annotations

from functools import partial

from repro.availability import mean_time_to_outage
from repro.enterprise import RedundancyDesign


def _design_outage_time(availability_evaluator, design):
    """Module-level per-design measure for the engine's ordered map."""
    return mean_time_to_outage(availability_evaluator.network_model(design))


def _outage_times(sweep_engine, availability_evaluator):
    designs = {
        "example (1/2/2/1)": RedundancyDesign(
            {"dns": 1, "web": 2, "app": 2, "db": 1}
        ),
        "no redundancy": RedundancyDesign({"dns": 1, "web": 1, "app": 1, "db": 1}),
        "full 2x redundancy": RedundancyDesign(
            {"dns": 2, "web": 2, "app": 2, "db": 2}
        ),
    }
    times = sweep_engine.map(
        partial(_design_outage_time, availability_evaluator),
        list(designs.values()),
    )
    return dict(zip(designs, times))


def test_extension_survivability(benchmark, sweep_engine, availability_evaluator):
    times = benchmark(_outage_times, sweep_engine, availability_evaluator)

    assert abs(times["example (1/2/2/1)"] - 360.0) / 360.0 < 0.01
    assert times["no redundancy"] < times["example (1/2/2/1)"]
    assert times["full 2x redundancy"] > 50_000.0

    print("\n[extension] mean time to first whole-tier outage")
    for label, hours in times.items():
        print(f"  {label:<22} {hours:12.1f} h  ({hours / 8760:8.2f} years)")
